"""Binary logistic regression (the spambase-style workload)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.models.base import ClassifierMixin, Model

__all__ = ["LogisticRegressionModel"]


def _stable_sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegressionModel(ClassifierMixin, Model):
    """Binary cross-entropy on logits ``xᵀw + b`` with optional L2.

    Targets are {0, 1} integers.  Convex, so Proposition 4.3's conditions
    hold up to the bounded-moments caveat; used for the spambase-like
    experiments of the full paper.
    """

    def __init__(self, num_features: int, *, l2: float = 0.0, fit_bias: bool = True):
        if num_features < 1:
            raise ConfigurationError(f"num_features must be >= 1, got {num_features}")
        if l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {l2}")
        self.num_features = int(num_features)
        self.l2 = float(l2)
        self.fit_bias = bool(fit_bias)

    @property
    def dimension(self) -> int:
        return self.num_features + (1 if self.fit_bias else 0)

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, 0.01, size=self.dimension)

    def _split(self, params: np.ndarray) -> tuple[np.ndarray, float]:
        params = np.asarray(params, dtype=np.float64)
        if params.shape != (self.dimension,):
            raise DimensionMismatchError(
                f"params must have shape ({self.dimension},), got {params.shape}"
            )
        if self.fit_bias:
            return params[:-1], float(params[-1])
        return params, 0.0

    def logits(self, params: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        weights, bias = self._split(params)
        return np.asarray(inputs, dtype=np.float64) @ weights + bias

    def loss(self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray) -> float:
        weights, _bias = self._split(params)
        z = self.logits(params, inputs)
        y = np.asarray(targets, dtype=np.float64)
        softplus = np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z)))
        data_term = float(np.mean(softplus - y * z))
        return data_term + 0.5 * self.l2 * float(weights @ weights)

    def gradient(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        weights, _bias = self._split(params)
        inputs = np.asarray(inputs, dtype=np.float64)
        z = self.logits(params, inputs)
        errors = _stable_sigmoid(z) - np.asarray(targets, dtype=np.float64)
        batch = len(inputs)
        grad_w = inputs.T @ errors / batch + self.l2 * weights
        if not self.fit_bias:
            return grad_w
        return np.concatenate([grad_w, [errors.mean()]])

    def predict_proba(self, params: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """P(y = 1 | x) for each row of ``inputs``."""
        return _stable_sigmoid(self.logits(params, inputs))

    def predict(self, params: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        return (self.predict_proba(params, inputs) >= 0.5).astype(np.int64)
