"""Attack gallery: every adversary vs every aggregation rule.

For each (rule, attack) pair, Monte-Carlo-measures the two conditions of
(α, f)-Byzantine resilience (Definition 3.2) and prints a matrix of who
survives what.  This is the fastest way to see *why* Krum's shape —
distance filtering, then selection — matters.

Run:  python examples/attack_gallery.py
"""

from __future__ import annotations

from repro import (
    Average,
    ClosestToAll,
    CollusionAttack,
    CoordinateWiseMedian,
    GaussianAttack,
    GeometricMedian,
    InnerProductAttack,
    Krum,
    LittleIsEnoughAttack,
    MultiKrum,
    OmniscientAttack,
    SignFlipAttack,
    TrimmedMean,
)
from repro.analysis import estimate_resilience
from repro.experiments import format_table

N, F = 13, 3
DIMENSION = 4
SIGMA = 0.02
TRIALS = 300


def main() -> None:
    rules = {
        "krum": Krum(f=F),
        "multi-krum": MultiKrum(f=F, m=6),
        "average": Average(),
        "closest-to-all": ClosestToAll(),
        "coord-median": CoordinateWiseMedian(),
        "trimmed-mean": TrimmedMean(f=F),
        "geom-median": GeometricMedian(),
    }
    attacks = {
        "gaussian": GaussianAttack(sigma=200.0),
        "omniscient": OmniscientAttack(scale=10.0),
        "sign-flip": SignFlipAttack(scale=5.0),
        "collusion": CollusionAttack(decoy_distance=100.0, against_gradient=True),
        "inner-product": InnerProductAttack(epsilon=0.5),
        "little-is-enough": LittleIsEnoughAttack(z=1.0),
    }

    condition_rows, selection_rows = [], []
    for rule_label, rule in rules.items():
        condition_row, selection_row = [rule_label], [rule_label]
        for attack in attacks.values():
            report = estimate_resilience(
                rule,
                attack,
                n=N,
                f=F,
                dimension=DIMENSION,
                sigma=SIGMA,
                trials=TRIALS,
                seed=42,
            )
            condition_row.append("ok" if report.satisfied else "FAIL")
            selection_row.append(
                f"{100 * report.byzantine_selection_rate:.0f}%"
                if report.byzantine_selection_rate or rule_label
                in ("krum", "multi-krum", "closest-to-all")
                else "-"
            )
        condition_rows.append(condition_row)
        selection_rows.append(selection_row)

    print(
        format_table(
            ["rule \\ attack", *attacks.keys()],
            condition_rows,
            title=(
                f"(α, f)-resilience condition (i), measured over {TRIALS} "
                f"trials (n={N}, f={F}, d={DIMENSION}, σ={SIGMA})"
            ),
        )
    )
    print()
    print(
        format_table(
            ["rule \\ attack", *attacks.keys()],
            [row for row in selection_rows if row[0] in
             ("krum", "multi-krum", "closest-to-all")],
            title="Byzantine-proposal selection rate (selection-based rules)",
        )
    )
    print(
        "\nReading: 'ok' = the measured ⟨E F, ∇Q⟩ clears the paper's"
        "\n(1 − sin α)‖∇Q‖² bound under that attack; 'FAIL' = the adversary"
        "\nbroke the direction of descent.  The linear rule fails the"
        "\ndirection-reversing attacks (Lemma 3.1); the closest-to-all rule"
        "\nis fully controlled by the Figure 2 collusion (its selection is"
        "\nByzantine ~100% of rounds, and with gradient-aimed decoys its"
        "\ncondition (i) fails too); Krum holds throughout."
    )


if __name__ == "__main__":
    main()
