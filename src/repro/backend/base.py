"""The ``ArrayBackend`` protocol — the namespace kernels may use.

The batched kernel layer (:mod:`repro.core.batched`,
:mod:`repro.core.bulyan`, the masked primitives of
:mod:`repro.utils.linalg` and the lock-step Weiszfeld solver of
:mod:`repro.baselines.medians`) is pure tensor arithmetic.  This module
pins down the *exact* array vocabulary those kernels are allowed to
speak, as an abstract class: a kernel receives an :class:`ArrayBackend`
instance (``xp`` by convention) and calls ``xp.einsum`` / ``xp.sort`` /
``xp.where`` / ... instead of ``np.*``.  Anything a kernel needs that is
not on this class is either added here (with a numpy *and* a torch
implementation) or does not belong in a kernel.

The kernel-author rule, enforced by review and by the parity suite in
``tests/backend/``: **inside a kernel, import the backend namespace,
never numpy.**  Plain Python indexing — basic and advanced slicing,
boolean-mask reads and writes, ``a[idx] = b`` scatter — plus the
arithmetic/comparison operators and ``@`` are shared by every supported
array library and remain fair game.

Method signatures follow numpy's conventions (``axis=`` keywords,
numpy argument order); non-numpy backends translate (e.g. torch's
``dim=``).  The reference implementation,
:class:`~repro.backend.numpy_backend.NumpyBackend`, delegates every
method to the identical numpy call, which is what re-anchors the
engine's loop/batched bit-for-bit differential guarantee to the numpy
backend: routing a kernel through it is a refactor-invariant, not a
numerical change.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any

import numpy as np

__all__ = ["ArrayBackend"]

# Kernels index with python ints everywhere, so the handle types are
# intentionally opaque: a dtype is whatever the backend's own library
# uses (``np.dtype`` / ``torch.dtype``), threaded through untouched.
Array = Any
DType = Any


class ArrayBackend(ABC):
    """One array library, presented through numpy-shaped entry points.

    Instances are cheap, stateless and shareable; configuration
    (floating dtype, device) is fixed at construction so every array a
    backend creates lands on one device with one precision.  The float
    dtype defaults to ``float64`` on every backend — the precision the
    differential and parity guarantees are stated in.
    """

    #: Registry name of the backend family ("numpy", "torch", ...).
    name: str = ""

    # -- handles -------------------------------------------------------

    #: Native floating dtype handle every kernel tensor uses.
    float_dtype: DType
    #: Native integer dtype handle (worker indices, committees).
    int_dtype: DType
    #: Native boolean dtype handle (candidate masks).
    bool_dtype: DType

    #: Scalar +inf — the "never wins an argmin" sentinel of the masked
    #: kernels.  A plain Python float, valid in any backend expression.
    inf: float = float("inf")

    @property
    @abstractmethod
    def numpy_float_dtype(self) -> np.dtype:
        """The numpy dtype matching :attr:`float_dtype` — what host-side
        staging buffers (the engine's proposal tensor) allocate with so
        a non-default backend precision is not silently up-cast."""

    @property
    @abstractmethod
    def device(self) -> str:
        """Human-readable device the backend computes on ("cpu", ...)."""

    def describe(self) -> str:
        """Resolved identity string, e.g. ``numpy[float64]`` or
        ``torch[float32,cuda:0]`` — what :class:`~repro.engine.GridResult`
        and the engine benchmarks report."""
        dtype = np.dtype(self.numpy_float_dtype).name
        device = self.device
        suffix = f",{device}" if device != "cpu" else ""
        return f"{self.name}[{dtype}{suffix}]"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"

    # -- creation & movement -------------------------------------------

    @abstractmethod
    def asarray(self, x: Any, dtype: DType | None = None) -> Array:
        """Convert to a backend array on the backend's device.
        ``dtype=None`` means :attr:`float_dtype` — kernels ingest floats
        unless they say otherwise."""

    @abstractmethod
    def to_numpy(self, x: Array) -> np.ndarray:
        """Materialize a backend array as a host numpy array (identity
        for numpy; device-to-host copy for accelerator backends)."""

    @abstractmethod
    def empty(self, shape: Sequence[int], dtype: DType | None = None) -> Array:
        """Uninitialized array (``dtype=None`` → :attr:`float_dtype`)."""

    @abstractmethod
    def zeros(self, shape: Sequence[int], dtype: DType | None = None) -> Array:
        """Zero-filled array (``dtype=None`` → :attr:`float_dtype`)."""

    @abstractmethod
    def full(
        self, shape: Sequence[int], fill_value: Any, dtype: DType | None = None
    ) -> Array:
        """Constant-filled array (``dtype=None`` → :attr:`float_dtype`)."""

    @abstractmethod
    def arange(self, stop: int, dtype: DType | None = None) -> Array:
        """``0..stop-1`` index vector (``dtype=None`` → :attr:`int_dtype`)."""

    @abstractmethod
    def copy(self, x: Array) -> Array:
        """An independent copy of ``x``."""

    @abstractmethod
    def astype(self, x: Array, dtype: DType) -> Array:
        """``x`` cast to ``dtype`` (used e.g. for 0/1 mask weights)."""

    # -- elementwise ---------------------------------------------------

    @abstractmethod
    def where(self, condition: Array, a: Any, b: Any) -> Array:
        """Elementwise select; scalar branches are promoted like numpy."""

    @abstractmethod
    def maximum(self, a: Any, b: Any) -> Array:
        """Elementwise max, NaN-propagating (numpy ``maximum``)."""

    @abstractmethod
    def minimum(self, a: Any, b: Any) -> Array:
        """Elementwise min, NaN-propagating (numpy ``minimum``)."""

    @abstractmethod
    def fmax(self, a: Any, b: Any) -> Array:
        """Elementwise max, NaN-ignoring (numpy ``fmax``) — the scale
        floors of the Weiszfeld convergence tests rely on it."""

    @abstractmethod
    def abs(self, x: Array) -> Array:
        """Elementwise absolute value."""

    @abstractmethod
    def sqrt(self, x: Array) -> Array:
        """Elementwise square root."""

    @abstractmethod
    def isfinite(self, x: Array) -> Array:
        """Elementwise finiteness mask."""

    # -- contractions --------------------------------------------------

    @abstractmethod
    def einsum(self, subscripts: str, *operands: Array) -> Array:
        """Einstein summation — the kernels' GEMM and masked-reduction
        workhorse."""

    @abstractmethod
    def transpose(self, x: Array, axes: Sequence[int]) -> Array:
        """Axis permutation (numpy ``transpose`` / torch ``permute``)."""

    # -- reductions (axis follows numpy semantics) ---------------------

    @abstractmethod
    def sum(self, x: Array, axis: int | None = None) -> Array:
        """Sum reduction."""

    @abstractmethod
    def mean(self, x: Array, axis: int | None = None) -> Array:
        """Mean reduction."""

    @abstractmethod
    def median(self, x: Array, axis: int) -> Array:
        """numpy-convention median: even counts average the two middle
        order statistics (torch's lower-median convention must NOT leak
        through this method)."""

    @abstractmethod
    def max(self, x: Array, axis: int | None = None) -> Array:
        """Max reduction (values only)."""

    @abstractmethod
    def min(self, x: Array, axis: int | None = None) -> Array:
        """Min reduction (values only)."""

    @abstractmethod
    def any(self, x: Array, axis: int | None = None) -> Array:
        """Boolean any-reduction."""

    @abstractmethod
    def all(self, x: Array, axis: int | None = None) -> Array:
        """Boolean all-reduction."""

    @abstractmethod
    def count_nonzero(self, x: Array, axis: int | None = None) -> Array:
        """Count of nonzero (True) entries."""

    @abstractmethod
    def argmin(self, x: Array, axis: int | None = None) -> Array:
        """Index of the first minimum — ties resolve to the smallest
        index on every backend (Krum's footnote-3 tie-break)."""

    @abstractmethod
    def argmax(self, x: Array, axis: int | None = None) -> Array:
        """Index of the first maximum."""

    @abstractmethod
    def norm(self, x: Array, axis: int | None = None) -> Array:
        """Euclidean (2-) norm along ``axis``."""

    # -- ordering ------------------------------------------------------

    @abstractmethod
    def sort(self, x: Array, axis: int = -1) -> Array:
        """Ascending sort; non-finite values order like numpy (NaN
        sorts to the high end)."""

    @abstractmethod
    def argsort(self, x: Array, axis: int = -1, stable: bool = False) -> Array:
        """Sort indices; ``stable=True`` guarantees numpy's
        ``kind="stable"`` tie order (selection rules depend on it)."""

    @abstractmethod
    def partition(self, x: Array, kth: int, axis: int = -1) -> Array:
        """Partial sort: the ``kth`` smallest values occupy the first
        ``kth+1`` slots (a full sort is a valid implementation)."""

    @abstractmethod
    def take_along_axis(self, x: Array, indices: Array, axis: int) -> Array:
        """Gather by per-slice indices (numpy ``take_along_axis``)."""

    # -- numerics control ----------------------------------------------

    @abstractmethod
    def errstate(self):
        """Context manager silencing the invalid/overflow/divide
        warnings the masked kernels deliberately provoke (inf - inf,
        1/0, ...).  Backends without numpy-style FP warnings return a
        null context."""
