"""Dataset container shared by all generators and the simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["Dataset", "train_test_split"]

_TASKS = ("regression", "binary", "multiclass")


@dataclass(frozen=True)
class Dataset:
    """An in-memory supervised dataset.

    ``inputs`` has shape ``(n, num_features)``; ``targets`` is ``(n,)`` —
    float for regression, integer labels otherwise.
    """

    inputs: np.ndarray
    targets: np.ndarray
    task: str
    num_classes: int = 0
    name: str = "dataset"

    def __post_init__(self) -> None:
        inputs = np.asarray(self.inputs, dtype=np.float64)
        object.__setattr__(self, "inputs", inputs)
        targets = np.asarray(self.targets)
        if self.task not in _TASKS:
            raise ConfigurationError(f"task must be one of {_TASKS}, got {self.task!r}")
        if self.task == "regression":
            targets = targets.astype(np.float64)
        else:
            targets = targets.astype(np.int64)
            if self.num_classes < 2:
                raise ConfigurationError(
                    f"classification dataset needs num_classes >= 2, got "
                    f"{self.num_classes}"
                )
            if len(targets) and (targets.min() < 0 or targets.max() >= self.num_classes):
                raise ConfigurationError(
                    f"labels out of range [0, {self.num_classes}): "
                    f"[{targets.min()}, {targets.max()}]"
                )
        object.__setattr__(self, "targets", targets)
        if inputs.ndim != 2:
            raise DimensionMismatchError(f"inputs must be (n, d), got {inputs.shape}")
        if len(inputs) != len(targets):
            raise DimensionMismatchError(
                f"{len(inputs)} inputs vs {len(targets)} targets"
            )

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def num_features(self) -> int:
        return int(self.inputs.shape[1])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A new dataset restricted to the given sample indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            inputs=self.inputs[indices],
            targets=self.targets[indices],
            task=self.task,
            num_classes=self.num_classes,
            name=self.name,
        )

    def shuffled(self, seed: SeedLike = None) -> "Dataset":
        """A new dataset with rows in random order."""
        rng = as_generator(seed)
        return self.subset(rng.permutation(len(self)))


def train_test_split(
    dataset: Dataset, *, test_fraction: float = 0.2, seed: SeedLike = None
) -> tuple[Dataset, Dataset]:
    """Random split into (train, test) with the given test fraction."""
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    rng = as_generator(seed)
    order = rng.permutation(len(dataset))
    num_test = max(1, int(round(len(dataset) * test_fraction)))
    if num_test >= len(dataset):
        raise ConfigurationError(
            f"test_fraction {test_fraction} leaves no training data "
            f"(n={len(dataset)})"
        )
    return dataset.subset(order[num_test:]), dataset.subset(order[:num_test])
