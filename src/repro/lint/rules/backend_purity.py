"""backend-purity: kernel code speaks ArrayBackend, never raw numpy.

The PR 4 backend seam rests on a convention: inside the batched kernel
layer every array operation goes through the resolved
:class:`~repro.backend.ArrayBackend` namespace (``xp``), because a stray
``np.*`` call either breaks on torch inputs or silently round-trips a
device tensor through the host — and a float-dtype literal
(``np.float64``, ``dtype="float32"``) re-introduces the up-cast bugs the
PR 4 "float64-literal / np.empty audit" removed by hand.  This rule
makes that audit permanent.

Scope — only the four kernel modules, and within them only *kernel
scope*:

* functions with a ``backend`` or ``xp`` parameter (the kernel calling
  convention), including anything lexically nested in them;
* methods of ``BatchedAggregator`` subclasses, **except** classes that
  declare ``is_native = False`` in their body — that marker is the
  existing loop-fallback contract ("executes the per-scenario numpy
  rules"), which is numpy-only by design.

Host-side bookkeeping stays legal: integer/bool dtype references
(``np.int64``, selected-index arrays are host-side by the
``BatchedAggregationResult`` contract) and staging calls that pin an
explicit integer dtype (``np.asarray(..., dtype=np.int64)``).  A bare
``np.asarray(x)`` in kernel scope is flagged — that is precisely the
float64 up-cast shape.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.base import LintRule, ModuleContext
from repro.lint.findings import Finding

__all__ = ["BackendPurityRule"]

#: The modules whose batched kernels are backend-parametric.
KERNEL_MODULES = (
    "repro/core/batched.py",
    "repro/core/bulyan.py",
    "repro/baselines/medians.py",
    "repro/utils/linalg.py",
)

_INT_DTYPE_ATTRS = frozenset(
    {"int8", "int16", "int32", "int64", "intp", "uint8", "uint16",
     "uint32", "uint64", "bool_"}
)
_INT_DTYPE_STRINGS = frozenset(
    {"int8", "int16", "int32", "int64", "intp", "uint8", "uint16",
     "uint32", "uint64", "bool"}
)
#: numpy attributes legal in kernel scope: integer/bool dtype handles
#: and type references for annotations/isinstance.
_ALLOWED_ATTRS = _INT_DTYPE_ATTRS | {"ndarray", "integer", "dtype"}
#: Host-staging constructors, legal only with an explicit integer dtype.
_STAGING_CALLS = frozenset(
    {"asarray", "array", "empty", "zeros", "ones", "full", "stack",
     "concatenate"}
)
_FLOAT_DTYPE_STRINGS = frozenset(
    {"float16", "float32", "float64", "float128", "complex64",
     "complex128"}
)
_FLOAT_DTYPE_ATTRS = frozenset(
    {"float16", "float32", "float64", "float128", "half", "single",
     "double", "longdouble"}
)
_KERNEL_PARAMS = ("backend", "xp")


def _numpy_aliases(tree: ast.Module) -> set[str]:
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    every = (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    )
    return {arg.arg for arg in every}


def _is_loop_fallback(node: ast.ClassDef) -> bool:
    """``is_native = False`` in the class body — the loop-fallback marker."""
    for statement in node.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
            value = statement.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "is_native"
                and isinstance(value, ast.Constant)
                and value.value is False
            ):
                return True
    return False


def _is_kernel_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(
            base, "id", None
        )
        if name == "BatchedAggregator":
            return not _is_loop_fallback(node)
    return False


def _int_dtype_value(value: ast.expr, aliases: set[str]) -> bool:
    if isinstance(value, ast.Attribute):
        return (
            isinstance(value.value, ast.Name)
            and value.value.id in aliases
            and value.attr in _INT_DTYPE_ATTRS
        )
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value in _INT_DTYPE_STRINGS
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: BackendPurityRule, module: ModuleContext):
        self.rule = rule
        self.module = module
        self.aliases = _numpy_aliases(module.tree)
        self.findings: list[Finding] = []
        self._kernel_depth = 0
        self._class_stack: list[bool] = []  # is-kernel-class flags
        self._sanctioned: set[int] = set()  # np nodes already judged

    # -- scope tracking -------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(_is_kernel_class(node))
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        in_kernel_class = bool(self._class_stack and self._class_stack[-1])
        is_kernel = (
            self._kernel_depth > 0
            or in_kernel_class
            or bool(_function_params(node) & set(_KERNEL_PARAMS))
        )
        self._kernel_depth += 1 if is_kernel else 0
        # Methods of a kernel class may define further classes; reset the
        # class flag so only lexical nesting carries kernel scope.
        self._class_stack.append(False)
        self.generic_visit(node)
        self._class_stack.pop()
        self._kernel_depth -= 1 if is_kernel else 0

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- checks ---------------------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.module, node, message))

    def _numpy_attribute(self, node: ast.Attribute) -> bool:
        return (
            isinstance(node.value, ast.Name) and node.value.id in self.aliases
        )

    def visit_Call(self, node: ast.Call) -> None:
        if self._kernel_depth > 0:
            func = node.func
            if isinstance(func, ast.Attribute) and self._numpy_attribute(func):
                self._sanctioned.add(id(func))
                if func.attr in _STAGING_CALLS:
                    dtype = next(
                        (
                            kw.value
                            for kw in node.keywords
                            if kw.arg == "dtype"
                        ),
                        None,
                    )
                    if dtype is None or not _int_dtype_value(
                        dtype, self.aliases
                    ):
                        self._flag(
                            func,
                            f"np.{func.attr}(...) in kernel scope without an "
                            f"explicit integer dtype — use the backend "
                            f"namespace (xp.{func.attr}) or pin "
                            f"dtype=np.int64 for host-side index "
                            f"bookkeeping",
                        )
                elif func.attr not in _ALLOWED_ATTRS:
                    self._flag(
                        func,
                        f"kernel code must call the ArrayBackend namespace, "
                        f"not np.{func.attr} — backends other than numpy "
                        f"would silently round-trip through the host",
                    )
            # Float dtype string literals: dtype="float64" kwargs and
            # .astype("float32")-style calls re-introduce the up-cast
            # bug class the backend seam removed.
            for keyword in node.keywords:
                if (
                    keyword.arg == "dtype"
                    and isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)
                    and keyword.value.value in _FLOAT_DTYPE_STRINGS
                ):
                    self._flag(
                        keyword.value,
                        f"float dtype literal {keyword.value.value!r} in "
                        f"kernel scope — use the backend's float_dtype "
                        f"handle",
                    )
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                for argument in node.args:
                    if (
                        isinstance(argument, ast.Constant)
                        and isinstance(argument.value, str)
                        and argument.value in _FLOAT_DTYPE_STRINGS
                    ):
                        self._flag(
                            argument,
                            f"float dtype literal {argument.value!r} in "
                            f"kernel scope — use the backend's float_dtype "
                            f"handle",
                        )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self._kernel_depth > 0
            and id(node) not in self._sanctioned
            and self._numpy_attribute(node)
        ):
            if node.attr in _FLOAT_DTYPE_ATTRS:
                self._flag(
                    node,
                    f"float dtype literal np.{node.attr} in kernel scope — "
                    f"use the backend's float_dtype handle",
                )
            elif node.attr not in _ALLOWED_ATTRS | _STAGING_CALLS:
                self._flag(
                    node,
                    f"kernel code must use the ArrayBackend namespace "
                    f"(xp.{node.attr}), not np.{node.attr}",
                )
            elif node.attr in _STAGING_CALLS:
                # A staging constructor referenced without being called
                # (e.g. passed as a callback) cannot pin its dtype.
                self._flag(
                    node,
                    f"np.{node.attr} referenced (not called with an integer "
                    f"dtype) in kernel scope — use the backend namespace",
                )
        self.generic_visit(node)


class BackendPurityRule(LintRule):
    """No raw numpy or float-dtype literals inside batched kernels."""

    name = "backend-purity"
    description = (
        "batched kernels compute through the ArrayBackend namespace — no "
        "np.* calls or float dtype literals in kernel scope"
    )

    def __init__(self, kernel_modules: tuple[str, ...] = KERNEL_MODULES):
        self.kernel_modules = tuple(kernel_modules)

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.is_module(*self.kernel_modules):
            return ()
        visitor = _Visitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings
