"""Kardam-style staleness filtering — Byzantine tolerance under asynchrony.

Kardam (Damaskinos et al., "Asynchronous Byzantine Machine Learning")
composes two defenses in front of the update rule: an *empirical
Lipschitz filter* that rejects gradients whose growth rate is an outlier
against the recently accepted ones, and a *dampening* function ``Λ(τ)``
that shrinks a proposal by its staleness ``τ`` before it reaches the
update.  :class:`KardamFilter` is this library's composable version: an
:class:`~repro.core.aggregator.Aggregator` wrapper that filters and
dampens the ``(n, d)`` proposal stack *before the inner rule runs*, so
any registered choice function (krum, bulyan, medians, ...) becomes
staleness-aware without modification.

The wrapper implements :class:`StalenessAwareAggregator`: the parameter
server (and the batched executor's loop fallback) hands it the
per-proposal staleness vector and, when available, the parameter vector
each proposal was actually computed at.  Called through the plain
synchronous interface it treats every proposal as fresh and is *exactly*
the inner rule — the zero-staleness degenerate case does not fork
trajectories, which the async differential tests pin bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

import numpy as np

from repro.core.aggregator import AggregationResult, Aggregator
from repro.exceptions import (
    ByzantineToleranceError,
    ConfigurationError,
    DimensionMismatchError,
)

__all__ = ["StalenessAwareAggregator", "KardamFilter", "DAMPENING_MODES"]

#: Supported staleness-dampening functions Λ(τ); all satisfy Λ(0) = 1
#: exactly, so fresh proposals are bitwise untouched.
DAMPENING_MODES = ("none", "inverse", "exponential")


class StalenessAwareAggregator(Aggregator):
    """An aggregator that can exploit per-proposal staleness.

    The parameter server dispatches to
    :meth:`aggregate_detailed_stale` when its aggregator implements this
    interface; plain rules keep receiving the synchronous
    ``aggregate_detailed`` call.  Implementations must degenerate to
    their own synchronous behavior on an all-zero staleness vector.
    """

    def aggregate_detailed_stale(
        self,
        vectors: np.ndarray,
        staleness: np.ndarray,
        *,
        used_params: np.ndarray | None = None,
    ) -> AggregationResult:
        """Aggregate ``(n, d)`` proposals with per-proposal staleness.

        ``staleness[i]`` is the age (in rounds) of proposal ``i``;
        ``used_params[i]``, when given, is the parameter vector proposal
        ``i`` was computed at (the server reconstructs it from its
        bounded history).
        """
        raise NotImplementedError


class KardamFilter(StalenessAwareAggregator):
    """Dampen and filter stale proposals before an inner choice function.

    Parameters
    ----------
    inner:
        The wrapped rule that aggregates the filtered stack.
    dampening:
        ``Λ(τ)`` applied to each proposal: ``"inverse"`` (default,
        Kardam's ``1 / (1 + τ)``), ``"exponential"`` (``gamma ** τ``),
        or ``"none"``.  All modes satisfy ``Λ(0) = 1`` exactly.
    gamma:
        Base of the exponential dampening, in (0, 1].
    drop_above:
        Proposals with ``τ > drop_above`` are removed from the stack
        entirely (the hard bounded-staleness cut); ``None`` keeps all.
    lipschitz_quantile:
        When set (in (0, 1]), enables the empirical Lipschitz filter: a
        proposal whose growth rate ``‖v_i(t) − v_i(t')‖ / ‖x_i(t) −
        x_i(t')‖`` (successive proposals of the same worker slot, at the
        parameters each was computed at) exceeds this quantile of the
        recently accepted rates is dropped for the round.  Requires the
        caller to supply ``used_params``; rounds without them skip the
        filter.  Stateful across rounds — build one instance per
        simulation cell, as the registries do.
    window:
        How many accepted Lipschitz coefficients the quantile is taken
        over.

    If a round's filters would drop *every* proposal, the drop is waived
    for that round (liveness over filtering — the dampening still
    applies), mirroring Kardam's guarantee that the server always makes
    progress.

    When the filters *partially* drop rows, the surviving stack can be
    too small for the inner rule's ``2f + 2 < n`` precondition even
    though the full stack satisfied it.  By default the filter then
    degrades gracefully: it rebuilds the inner rule at the largest
    effective ``f`` the surviving stack tolerates (``inner_builder(
    f_eff)`` when supplied, else ``type(inner)(f=f_eff)``) and
    aggregates with that — the filtered rows are, after all, the ones
    Kardam vouches for.  ``strict=True`` restores the old behavior and
    re-raises the :class:`~repro.exceptions.ByzantineToleranceError`.
    """

    def __init__(
        self,
        inner: Aggregator,
        *,
        dampening: str = "inverse",
        gamma: float = 0.5,
        drop_above: int | None = None,
        lipschitz_quantile: float | None = None,
        window: int = 256,
        strict: bool = False,
        inner_builder: Callable[[int], Aggregator] | None = None,
    ):
        if not isinstance(inner, Aggregator):
            raise ConfigurationError(
                f"inner must be an Aggregator, got {type(inner).__name__}"
            )
        if dampening not in DAMPENING_MODES:
            raise ConfigurationError(
                f"dampening must be one of {DAMPENING_MODES}, "
                f"got {dampening!r}"
            )
        if not 0.0 < float(gamma) <= 1.0:
            raise ConfigurationError(
                f"gamma must be in (0, 1], got {gamma}"
            )
        if drop_above is not None and int(drop_above) < 0:
            raise ConfigurationError(
                f"drop_above must be >= 0, got {drop_above}"
            )
        if lipschitz_quantile is not None and not (
            0.0 < float(lipschitz_quantile) <= 1.0
        ):
            raise ConfigurationError(
                f"lipschitz_quantile must be in (0, 1], "
                f"got {lipschitz_quantile}"
            )
        if int(window) < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not isinstance(strict, bool):
            raise ConfigurationError(
                f"strict must be a bool, got {type(strict).__name__}"
            )
        if inner_builder is not None and not callable(inner_builder):
            raise ConfigurationError(
                "inner_builder must be callable (f_eff -> Aggregator), "
                f"got {type(inner_builder).__name__}"
            )
        self.inner = inner
        self.strict = strict
        self.inner_builder = inner_builder
        # Effective-f fallback aggregators, built lazily the first time
        # the filtered stack undershoots the inner precondition and
        # cached so repeated shortfalls reuse one instance per f_eff.
        self._degraded: dict[int, Aggregator] = {}
        self.dampening = dampening
        self.gamma = float(gamma)
        self.drop_above = None if drop_above is None else int(drop_above)
        self.lipschitz_quantile = (
            None if lipschitz_quantile is None else float(lipschitz_quantile)
        )
        self.window = int(window)
        # Per-worker-slot previous (proposal, params) for the empirical
        # Lipschitz coefficient, plus the accepted-coefficient window.
        self._previous: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._coefficients: deque[float] = deque(maxlen=self.window)
        self.name = self._encode_name()

    def _encode_name(self) -> str:
        extras = []
        if self.dampening != "inverse":
            extras.append(f"dampening={self.dampening}")
        if self.dampening == "exponential" and self.gamma != 0.5:
            extras.append(f"gamma={self.gamma}")
        if self.drop_above is not None:
            extras.append(f"drop_above={self.drop_above}")
        if self.lipschitz_quantile is not None:
            extras.append(f"lipschitz_quantile={self.lipschitz_quantile}")
            if self.window != 256:
                extras.append(f"window={self.window}")
        if self.strict:
            extras.append("strict=True")
        suffix = ("," + ",".join(extras)) if extras else ""
        return f"kardam({self.inner.name}{suffix})"

    # ------------------------------------------------------------------

    def check_tolerance(self, num_workers: int) -> None:
        self.inner.check_tolerance(num_workers)

    def dampening_factor(self, staleness: np.ndarray) -> np.ndarray:
        """``Λ(τ)`` per proposal; ``Λ(0) == 1.0`` exactly in every mode."""
        staleness = np.asarray(staleness, dtype=np.float64)
        if self.dampening == "none":
            return np.ones_like(staleness)
        if self.dampening == "inverse":
            return 1.0 / (1.0 + staleness)
        return self.gamma**staleness

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        """Synchronous call: every proposal is fresh — exactly the inner
        rule.  No ``used_params`` are available on this interface, so
        the Lipschitz filter (which needs them) stays disarmed; it only
        observes rounds dispatched through
        :meth:`aggregate_detailed_stale`, as the parameter server does."""
        vectors = np.asarray(vectors, dtype=np.float64)
        return self.aggregate_detailed_stale(
            vectors, np.zeros(vectors.shape[0], dtype=np.int64)
        )

    def aggregate_detailed_stale(
        self,
        vectors: np.ndarray,
        staleness: np.ndarray,
        *,
        used_params: np.ndarray | None = None,
    ) -> AggregationResult:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise DimensionMismatchError(
                f"proposals must be (n, d), got {vectors.shape}"
            )
        staleness = np.asarray(staleness, dtype=np.int64)
        if staleness.shape != (vectors.shape[0],):
            raise DimensionMismatchError(
                f"staleness must be ({vectors.shape[0]},), "
                f"got {staleness.shape}"
            )
        if np.any(staleness < 0):
            raise ConfigurationError(
                f"staleness must be >= 0, got {staleness.tolist()}"
            )
        if used_params is not None:
            used_params = np.asarray(used_params, dtype=np.float64)
            if used_params.shape != vectors.shape:
                raise DimensionMismatchError(
                    f"used_params must match proposals {vectors.shape}, "
                    f"got {used_params.shape}"
                )

        keep = np.ones(vectors.shape[0], dtype=bool)
        if self.drop_above is not None:
            keep &= staleness <= self.drop_above
        if self.lipschitz_quantile is not None and used_params is not None:
            keep &= self._lipschitz_keep(
                vectors, used_params, admissible=keep
            )
        if not keep.any():
            # Liveness: a round must produce an update.  Waive the drop
            # and let the dampening alone arbitrate.
            keep[:] = True

        kept = np.flatnonzero(keep)
        filtered = vectors[kept]
        kept_staleness = staleness[kept]
        if np.any(kept_staleness > 0):
            filtered = (
                filtered
                * self.dampening_factor(kept_staleness)[:, None]
            )
        result = self._aggregate_filtered(filtered)
        if kept.size == vectors.shape[0]:
            return result
        # Rows were dropped: map the inner rule's selected indices (and
        # scores) back to the caller's original row positions.
        selected = kept[np.asarray(result.selected, dtype=np.int64)]
        scores = None
        if result.scores is not None:
            scores = np.full(vectors.shape[0], np.nan)
            scores[kept] = result.scores
        return AggregationResult(
            vector=result.vector, selected=selected, scores=scores
        )

    def _aggregate_filtered(self, filtered: np.ndarray) -> AggregationResult:
        """Run the inner rule on the surviving stack, degrading its
        effective ``f`` when the filters left too few rows for the
        declared precondition (``strict=True`` re-raises instead)."""
        num_rows = int(filtered.shape[0])
        try:
            self.inner.check_tolerance(num_rows)
        except ByzantineToleranceError:
            if self.strict:
                raise
            degraded = self._degraded_inner(num_rows)
            if degraded is None:
                raise
            return degraded.aggregate_detailed(filtered)
        return self.inner.aggregate_detailed(filtered)

    def _degraded_inner(self, num_rows: int) -> Aggregator | None:
        """Largest-``f`` rebuild of the inner rule whose precondition
        admits ``num_rows`` proposals, or ``None`` when no rebuild does
        (the caller then re-raises the original tolerance error).
        Candidates come from ``inner_builder`` when supplied, else from
        ``type(self.inner)(f=f_eff)``; either failing to build a given
        ``f_eff`` just moves the search down."""
        declared = getattr(self.inner, "f", None)
        if declared is None:
            return None
        for f_eff in range(int(declared) - 1, -1, -1):
            candidate = self._degraded.get(f_eff)
            if candidate is None:
                try:
                    if self.inner_builder is not None:
                        candidate = self.inner_builder(f_eff)
                    else:
                        candidate = type(self.inner)(f=f_eff)
                except (ConfigurationError, TypeError):
                    continue
                if not isinstance(candidate, Aggregator):
                    continue
                self._degraded[f_eff] = candidate
            try:
                candidate.check_tolerance(num_rows)
            except ByzantineToleranceError:
                continue
            return candidate
        return None

    def _lipschitz_keep(
        self,
        vectors: np.ndarray,
        used_params: np.ndarray,
        *,
        admissible: np.ndarray,
    ) -> np.ndarray:
        """Empirical-Lipschitz verdict per worker slot, then update the
        per-slot memory and the accepted-coefficient window.

        A slot's coefficient compares its current and previous proposals
        at the parameters each was computed at.  Slots without history,
        or whose parameter displacement is zero, pass trivially (no
        rate to measure).  ``admissible`` marks rows that survived the
        earlier filters: only their coefficients may enter the learned
        window — a proposal the hard staleness cut already rejected must
        not steer the quantile threshold.
        """
        n = vectors.shape[0]
        keep = np.ones(n, dtype=bool)
        coefficients: list[tuple[int, float]] = []
        for i in range(n):
            previous = self._previous.get(i)
            if previous is not None:
                prev_vector, prev_params = previous
                displacement = float(
                    np.linalg.norm(used_params[i] - prev_params)
                )
                if displacement > 0.0:
                    rate = (
                        float(np.linalg.norm(vectors[i] - prev_vector))
                        / displacement
                    )
                    coefficients.append((i, rate))
        if coefficients and len(self._coefficients) > 0:
            threshold = float(
                np.quantile(
                    np.asarray(self._coefficients, dtype=np.float64),
                    self.lipschitz_quantile,
                )
            )
            for i, rate in coefficients:
                if rate > threshold:
                    keep[i] = False
        # Memory updates: every observed slot advances; only rates of
        # proposals accepted by *every* filter enter the window (Kardam's
        # filter learns from the gradients it admitted).
        for i, rate in coefficients:
            if keep[i] and admissible[i] and np.isfinite(rate):
                self._coefficients.append(rate)
        for i in range(n):
            self._previous[i] = (vectors[i].copy(), used_params[i].copy())
        return keep
