"""Post-2017 attacks included as extensions for the ablation benches.

These were designed specifically to evade distance-based defenses like
Krum, and bound what the paper's guarantee does **not** promise: the
(α, f) resilience property constrains the aggregate's direction and
moments, not worst-case behaviour outside the variance condition.

* :class:`LittleIsEnoughAttack` — Baruch et al., "A Little Is Enough"
  (NeurIPS 2019): perturb the mean by z standard deviations per
  coordinate, with z small enough to stay inside the honest cloud.
* :class:`InnerProductAttack` — Xie et al., "Fall of Empires" (UAI
  2019): send ``−ε · mean`` with small ε, flipping the aggregate's inner
  product with the gradient while remaining close to the origin-side of
  the honest cluster.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import ConfigurationError

__all__ = ["LittleIsEnoughAttack", "InnerProductAttack"]


class LittleIsEnoughAttack(Attack):
    """All Byzantine workers send ``mean − z · std`` (coordinate-wise).

    ``z=None`` picks the classic heuristic z from the normal quantile
    such that the perturbed point still has sufficiently many honest
    supporters: ``z = Φ⁻¹((n − f − s) / (n − f))`` with
    ``s = ⌊n/2⌋ + 1 − f`` supporters needed.
    """

    def __init__(self, z: float | None = None):
        if z is not None and z <= 0:
            raise ConfigurationError(f"z must be positive, got {z}")
        self.z = z
        self.name = f"little-is-enough(z={'auto' if z is None else f'{z:g}'})"

    def _auto_z(self, n: int, f: int) -> float:
        supporters = n // 2 + 1 - f
        quantile = max((n - f - supporters) / max(n - f, 1), 1e-6)
        # Inverse normal CDF via the Acklam rational approximation is
        # overkill here; a coarse bisection on erf is exact enough.
        from math import erf, sqrt

        lo, hi = 0.0, 10.0
        for _ in range(80):
            mid = (lo + hi) / 2
            if 0.5 * (1 + erf(mid / sqrt(2))) < quantile:
                lo = mid
            else:
                hi = mid
        return max((lo + hi) / 2, 1e-3)

    def craft(self, context: AttackContext) -> np.ndarray:
        mean = context.honest_mean
        std = context.honest_gradients.std(axis=0)
        z = self.z if self.z is not None else self._auto_z(
            context.num_workers, context.num_byzantine
        )
        proposal = mean - z * std
        return self._output(
            context, np.tile(proposal, (context.num_byzantine, 1))
        )


class InnerProductAttack(Attack):
    """All Byzantine workers send ``−ε ×`` the honest mean (small ε).

    Keeps the proposal norm comparable to honest ones (unlike the loud
    omniscient attack) while making the aggregate's inner product with
    the true gradient negative whenever it is selected.
    """

    def __init__(self, epsilon: float = 0.5):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.name = f"inner-product(eps={self.epsilon:g})"

    def craft(self, context: AttackContext) -> np.ndarray:
        proposal = -self.epsilon * context.honest_mean
        return self._output(
            context, np.tile(proposal, (context.num_byzantine, 1))
        )
