"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.data.synthetic import make_logistic_data
from repro.models.logistic import LogisticRegressionModel
from tests.helpers import assert_gradients_close, numerical_gradient


class TestLogisticRegression:
    def test_gradient_matches_numeric(self, rng):
        model = LogisticRegressionModel(5, l2=0.05)
        params = rng.standard_normal(6)
        inputs = rng.standard_normal((10, 5))
        targets = rng.integers(0, 2, size=10)
        analytic = model.gradient(params, inputs, targets)
        numeric = numerical_gradient(
            lambda p: model.loss(p, inputs, targets), params.copy()
        )
        assert_gradients_close(analytic, numeric, rtol=1e-5)

    def test_loss_at_zero_params_is_log2(self, rng):
        model = LogisticRegressionModel(4)
        inputs = rng.standard_normal((20, 4))
        targets = rng.integers(0, 2, size=20)
        assert model.loss(np.zeros(5), inputs, targets) == pytest.approx(np.log(2))

    def test_stable_for_extreme_logits(self):
        model = LogisticRegressionModel(1, fit_bias=False)
        inputs = np.array([[1000.0], [-1000.0]])
        targets = np.array([1, 0])
        loss = model.loss(np.array([1.0]), inputs, targets)
        assert np.isfinite(loss)
        grad = model.gradient(np.array([1.0]), inputs, targets)
        assert np.all(np.isfinite(grad))

    def test_learns_separable_data(self, rng):
        dataset, _true = make_logistic_data(
            400, num_features=5, margin_scale=6.0, seed=0
        )
        model = LogisticRegressionModel(5)
        params = model.init_params(rng)
        for _step in range(300):
            grad = model.gradient(params, dataset.inputs, dataset.targets)
            params -= 0.5 * grad
        assert model.accuracy(params, dataset.inputs, dataset.targets) > 0.9

    def test_predict_proba_in_unit_interval(self, rng):
        model = LogisticRegressionModel(3)
        probs = model.predict_proba(
            rng.standard_normal(4), rng.standard_normal((15, 3)) * 10
        )
        assert np.all((probs >= 0) & (probs <= 1))

    def test_predict_threshold(self):
        model = LogisticRegressionModel(1, fit_bias=False)
        preds = model.predict(np.array([1.0]), np.array([[5.0], [-5.0]]))
        np.testing.assert_array_equal(preds, [1, 0])

    def test_error_rate_complements_accuracy(self, rng):
        model = LogisticRegressionModel(2)
        params = rng.standard_normal(3)
        inputs = rng.standard_normal((30, 2))
        targets = rng.integers(0, 2, size=30)
        assert model.error_rate(params, inputs, targets) == pytest.approx(
            1.0 - model.accuracy(params, inputs, targets)
        )
