"""Tests for the quadratic bowl model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models.quadratic import QuadraticBowl
from tests.helpers import assert_gradients_close, numerical_gradient


class TestQuadraticBowl:
    def test_value_at_optimum_is_offset(self):
        bowl = QuadraticBowl(4, optimum=np.ones(4), offset=2.0)
        assert bowl.value(np.ones(4)) == pytest.approx(2.0)

    def test_gradient_zero_at_optimum(self):
        bowl = QuadraticBowl(5, optimum=np.arange(5.0))
        np.testing.assert_allclose(bowl.exact_gradient(np.arange(5.0)), np.zeros(5))

    def test_gradient_matches_numeric(self, rng):
        matrix = rng.standard_normal((4, 4))
        curvature = matrix @ matrix.T + 4 * np.eye(4)
        bowl = QuadraticBowl(4, curvature=curvature)
        x = rng.standard_normal(4)
        numeric = numerical_gradient(lambda p: bowl.value(p), x.copy())
        assert_gradients_close(bowl.exact_gradient(x), numeric, rtol=1e-5)

    def test_scalar_curvature(self):
        bowl = QuadraticBowl(3, curvature=2.0)
        np.testing.assert_allclose(
            bowl.exact_gradient(np.array([1.0, 0.0, 0.0])), [2.0, 0.0, 0.0]
        )

    def test_distance_to_optimum(self):
        bowl = QuadraticBowl(2, optimum=np.array([3.0, 4.0]))
        assert bowl.distance_to_optimum(np.zeros(2)) == pytest.approx(5.0)

    def test_model_interface_ignores_batch(self, rng):
        bowl = QuadraticBowl(3)
        x = rng.standard_normal(3)
        assert bowl.loss(x, np.zeros((5, 1)), np.zeros(5)) == bowl.value(x)
        np.testing.assert_array_equal(
            bowl.gradient(x, None, None), bowl.exact_gradient(x)
        )

    def test_estimator_is_unbiased(self, rng):
        bowl = QuadraticBowl(6)
        estimator = bowl.as_estimator(sigma=0.3)
        x = rng.standard_normal(6)
        samples = np.stack([estimator.estimate(x, rng) for _ in range(4000)])
        np.testing.assert_allclose(
            samples.mean(axis=0), bowl.exact_gradient(x), atol=0.05
        )

    def test_estimator_sigma_matches_definition(self, rng):
        # d sigma^2 = E||G - g||^2
        bowl = QuadraticBowl(10)
        estimator = bowl.as_estimator(sigma=0.5)
        x = np.zeros(10)
        measured = estimator.empirical_sigma(x, rng, num_samples=2000)
        assert measured == pytest.approx(0.5, rel=0.1)

    def test_rejects_non_psd_curvature(self):
        with pytest.raises(ConfigurationError, match="positive definite"):
            QuadraticBowl(2, curvature=np.array([[1.0, 0.0], [0.0, -1.0]]))

    def test_rejects_asymmetric_curvature(self):
        with pytest.raises(ConfigurationError, match="symmetric"):
            QuadraticBowl(2, curvature=np.array([[1.0, 0.5], [0.0, 1.0]]))

    def test_rejects_wrong_optimum_shape(self):
        with pytest.raises(ConfigurationError):
            QuadraticBowl(3, optimum=np.zeros(4))

    def test_rejects_negative_offset(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            QuadraticBowl(2, offset=-1.0)

    def test_init_params_far_from_optimum(self, rng):
        bowl = QuadraticBowl(8)
        x0 = bowl.init_params(rng)
        assert bowl.distance_to_optimum(x0) > 1.0
