"""repro — Byzantine-tolerant distributed SGD (Krum), reproduced in full.

A from-scratch Python reproduction of

    P. Blanchard, E. M. El Mhamdi, R. Guerraoui, J. Stainer.
    "Brief Announcement: Byzantine-Tolerant Machine Learning",
    PODC 2017 (full version: arXiv:1703.02757 / NeurIPS 2017).

Quickstart::

    import numpy as np
    from repro import Krum, Average, GaussianAttack
    from repro.experiments import build_quadratic_simulation
    from repro.models import QuadraticBowl

    bowl = QuadraticBowl(dimension=20)
    sim = build_quadratic_simulation(
        bowl, aggregator=Krum(f=3), num_workers=15, num_byzantine=3,
        sigma=0.5, attack=GaussianAttack(sigma=100.0), seed=0,
    )
    history = sim.run(300, eval_every=25)
    print(history.final_loss)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.attacks import (
    Attack,
    AttackContext,
    BenignAttack,
    CollusionAttack,
    CompositeAttack,
    CrashAttack,
    DefenseProbingAttack,
    GaussianAttack,
    InnerProductAttack,
    LabelFlipAttack,
    LinearHijackAttack,
    LipschitzMimicryAttack,
    LittleIsEnoughAttack,
    NonFiniteAttack,
    OmniscientAttack,
    SignFlipAttack,
    StalenessGamingAttack,
    StragglerAttack,
)
from repro.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    make_backend,
    register_backend,
)
from repro.baselines import (
    Average,
    ClosestToAll,
    CoordinateWiseMedian,
    GeometricMedian,
    MinimalDiameterSubset,
    TrimmedMean,
    WeightedAverage,
)
from repro.core import (
    AggregationResult,
    Aggregator,
    Bulyan,
    Krum,
    MultiKrum,
    available_aggregators,
    check_krum_precondition,
    eta,
    krum_scores,
    make_aggregator,
    max_tolerable_f,
    resilience_angle,
)
from repro.distributed import (
    ParameterServer,
    TrainingHistory,
    TrainingSimulation,
)
from repro.exceptions import (
    ByzantineToleranceError,
    ConfigurationError,
    ConvergenceError,
    DimensionMismatchError,
    InvalidVectorError,
    ReproError,
    SimulationError,
)
from repro.servers import (
    RandomNoiseBroadcastAttack,
    ReplicatedServerGroup,
    ServerAttack,
    ServerAttackContext,
    ShardedAggregator,
    ShardedParameterState,
    SignFlipBroadcastAttack,
    StaleReplayBroadcastAttack,
    available_server_attacks,
    make_server_attack,
    register_server_attack,
    replica_view,
    shard_bounds,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Aggregator",
    "AggregationResult",
    "Krum",
    "MultiKrum",
    "Bulyan",
    "krum_scores",
    "eta",
    "check_krum_precondition",
    "max_tolerable_f",
    "resilience_angle",
    "make_aggregator",
    "available_aggregators",
    # baselines
    "Average",
    "WeightedAverage",
    "ClosestToAll",
    "MinimalDiameterSubset",
    "CoordinateWiseMedian",
    "TrimmedMean",
    "GeometricMedian",
    # attacks
    "Attack",
    "AttackContext",
    "BenignAttack",
    "GaussianAttack",
    "SignFlipAttack",
    "CrashAttack",
    "NonFiniteAttack",
    "StragglerAttack",
    "LinearHijackAttack",
    "CollusionAttack",
    "CompositeAttack",
    "OmniscientAttack",
    "LabelFlipAttack",
    "LittleIsEnoughAttack",
    "InnerProductAttack",
    "StalenessGamingAttack",
    "LipschitzMimicryAttack",
    "DefenseProbingAttack",
    # distributed
    "ParameterServer",
    "TrainingSimulation",
    "TrainingHistory",
    # server tier
    "ReplicatedServerGroup",
    "ShardedParameterState",
    "ShardedAggregator",
    "shard_bounds",
    "replica_view",
    "ServerAttack",
    "ServerAttackContext",
    "SignFlipBroadcastAttack",
    "StaleReplayBroadcastAttack",
    "RandomNoiseBroadcastAttack",
    "register_server_attack",
    "available_server_attacks",
    "make_server_attack",
    # array backends
    "ArrayBackend",
    "NumpyBackend",
    "register_backend",
    "available_backends",
    "make_backend",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "ByzantineToleranceError",
    "DimensionMismatchError",
    "InvalidVectorError",
    "ConvergenceError",
    "SimulationError",
]
