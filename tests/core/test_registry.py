"""Tests for the aggregator registry."""

import numpy as np
import pytest

from repro.core.aggregator import Aggregator
from repro.core.registry import (
    available_aggregators,
    make_aggregator,
    register_aggregator,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_builtin_rules_registered(self):
        names = available_aggregators()
        for expected in (
            "krum",
            "multi-krum",
            "average",
            "weighted-average",
            "closest-to-all",
            "minimal-diameter",
            "coordinate-median",
            "trimmed-mean",
            "geometric-median",
        ):
            assert expected in names

    def test_make_krum(self):
        rule = make_aggregator("krum", f=2)
        assert isinstance(rule, Aggregator)
        assert rule.f == 2

    def test_make_multikrum_with_kwargs(self):
        rule = make_aggregator("multi-krum", f=2, m=3)
        assert rule.m == 3

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_aggregator("no-such-rule")

    def test_register_custom(self):
        class Custom(Aggregator):
            name = "custom"

            def aggregate_detailed(self, vectors):
                raise NotImplementedError

        register_aggregator("custom-test-rule", Custom)
        try:
            assert isinstance(make_aggregator("custom-test-rule"), Custom)
        finally:
            # Keep the global registry clean for other tests.
            from repro.core import registry

            registry._REGISTRY.pop("custom-test-rule", None)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            register_aggregator("", lambda: None)


class TestRegistryRoundTrip:
    """Every registered rule constructs, aggregates, and declares whether
    the engine has a batched kernel for it."""

    # Minimal constructor kwargs per rule for an (n, d) = (8, 3) stack.
    CONSTRUCTOR_KWARGS = {
        "kardam": {"f": 1},  # wraps krum by default
        "krum": {"f": 1},
        "multi-krum": {"f": 1, "m": 2},
        "bulyan": {"f": 1},  # needs n >= 4f + 3 = 7
        "average": {},
        "weighted-average": {"weights": [1.0] * 8},
        "closest-to-all": {},
        "minimal-diameter": {"f": 1},
        "coordinate-median": {},
        "trimmed-mean": {"f": 1},
        "geometric-median": {},
    }

    # Rules the engine aggregates through vectorized kernels; everything
    # else must still work via the per-scenario loop fallback.
    EXPECTED_BATCHED = {
        "krum",
        "multi-krum",
        "average",
        "closest-to-all",
        "coordinate-median",
        "trimmed-mean",
        "bulyan",
        "geometric-median",
    }

    def test_kwargs_cover_every_registered_name(self):
        assert set(self.CONSTRUCTOR_KWARGS) == set(available_aggregators())

    def test_every_rule_constructs_and_aggregates(self, rng):
        from repro.core.batched import has_batched_kernel, make_batched_aggregator

        vectors = rng.standard_normal((8, 3))
        batched_names = set()
        for name in available_aggregators():
            rule = make_aggregator(name, **self.CONSTRUCTOR_KWARGS[name])
            out = rule.aggregate(vectors)
            assert out.shape == (3,), name
            assert np.all(np.isfinite(out)), name

            if has_batched_kernel(rule):
                batched_names.add(name)
            # Whether native or fallback, the adapter must replicate the
            # per-scenario result on a singleton batch.
            adapter = make_batched_aggregator(rule)
            batch_out = adapter.aggregate_batch(vectors[None])
            np.testing.assert_array_equal(batch_out.vectors[0], out)
        assert batched_names == self.EXPECTED_BATCHED

    def test_aggregator_factory_exposed(self):
        from repro.core.registry import aggregator_factory

        from repro.core.krum import Krum

        assert aggregator_factory("krum") is Krum
        with pytest.raises(ConfigurationError, match="available"):
            aggregator_factory("no-such-rule")
