"""Built-in lint rules: importing this package registers them.

Each rule module registers itself with
:mod:`repro.lint.registry` at import time, mirroring how the
aggregator/attack/workload/backend/delay registries self-register their
built-ins.
"""

from __future__ import annotations

from repro.lint.registry import register_rule
from repro.lint.rules.backend_purity import BackendPurityRule
from repro.lint.rules.error_taxonomy import ErrorTaxonomyRule
from repro.lint.rules.registry_contract import RegistryFactoryContractRule
from repro.lint.rules.rng_discipline import RngDisciplineRule
from repro.lint.rules.stateful_attack import StatefulAttackRule

__all__ = [
    "BackendPurityRule",
    "RngDisciplineRule",
    "ErrorTaxonomyRule",
    "StatefulAttackRule",
    "RegistryFactoryContractRule",
]

register_rule(BackendPurityRule.name, BackendPurityRule)
register_rule(RngDisciplineRule.name, RngDisciplineRule)
register_rule(ErrorTaxonomyRule.name, ErrorTaxonomyRule)
register_rule(StatefulAttackRule.name, StatefulAttackRule)
register_rule(RegistryFactoryContractRule.name, RegistryFactoryContractRule)
