"""Composite attack: different Byzantine workers run different behaviours.

Realistic failure scenarios mix causes — some workers crash, some lag,
one is actively malicious.  ``CompositeAttack`` partitions the f
Byzantine slots among sub-attacks and lets each craft its share, while
every sub-attack still sees the full omniscient context.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import ConfigurationError

__all__ = ["CompositeAttack"]


class CompositeAttack(Attack):
    """Split the Byzantine slots among several attacks.

    ``parts`` maps each sub-attack to the number of workers it controls;
    the counts must sum to the round's f.  Slots are assigned to
    sub-attacks in order (the first ``counts[0]`` Byzantine ids go to the
    first attack, and so on).
    """

    def __init__(self, parts: list[tuple[Attack, int]]):
        if not parts:
            raise ConfigurationError("CompositeAttack needs at least one part")
        for attack, count in parts:
            if not isinstance(attack, Attack):
                raise ConfigurationError(f"{attack!r} is not an Attack")
            if count < 1:
                raise ConfigurationError(
                    f"each part needs >= 1 worker, got {count} for {attack.name}"
                )
        self.parts = list(parts)
        total = sum(count for _a, count in parts)
        self.name = "composite(" + "+".join(
            f"{count}x{attack.name}" for attack, count in parts
        ) + ")"
        self._total = total
        self.stateful = any(attack.stateful for attack, _count in parts)

    def reset(self) -> None:
        for attack, _count in self.parts:
            attack.reset()

    def craft(self, context: AttackContext) -> np.ndarray:
        if context.num_byzantine != self._total:
            raise ConfigurationError(
                f"{self.name} controls {self._total} workers but the round "
                f"has {context.num_byzantine} Byzantine slots"
            )
        proposals = np.empty((context.num_byzantine, context.dimension))
        offset = 0
        for attack, count in self.parts:
            sub_context = AttackContext(
                round_index=context.round_index,
                params=context.params,
                honest_gradients=context.honest_gradients,
                byzantine_indices=context.byzantine_indices[
                    offset : offset + count
                ],
                honest_indices=context.honest_indices,
                num_workers=context.num_workers,
                rng=context.rng,
                aggregator=context.aggregator,
                true_gradient=context.true_gradient,
                honest_staleness=context.honest_staleness,
                byzantine_staleness=(
                    None
                    if context.byzantine_staleness is None
                    else context.byzantine_staleness[offset : offset + count]
                ),
                honest_params=context.honest_params,
                selected_last_round=(
                    None
                    if context.selected_last_round is None
                    else context.selected_last_round[offset : offset + count]
                ),
            )
            proposals[offset : offset + count] = attack.craft(sub_context)
            offset += count
        return self._output(context, proposals)
