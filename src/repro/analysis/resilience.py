"""Empirical (α, f)-Byzantine-resilience measurement (Definition 3.2).

Definition 3.2 requires of the choice function F, against *any* Byzantine
vectors, that

  (i)  ⟨E F, g⟩ ≥ (1 − sin α) · ‖g‖²  > 0, and
  (ii) for r = 2, 3, 4, E‖F‖^r is bounded by a combination of moments
       of the correct estimator G.

This module measures both sides by Monte-Carlo: honest proposals are
drawn from the Gaussian estimator ``g + σ N(0, I_d)``, the attack crafts
the f Byzantine rows, the aggregator runs, and the empirical mean/moments
of its output are compared against the theoretical thresholds computed
from η(n, f).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.core.aggregator import Aggregator
from repro.core.batched import LoopBatchedAggregator, make_batched_aggregator
from repro.core.theory import eta
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["ResilienceReport", "estimate_resilience"]


@dataclass(frozen=True)
class ResilienceReport:
    """Measured quantities of one resilience experiment.

    ``scalar_product`` is ⟨Ê F, g⟩; ``threshold`` is (1 − sin α)·‖g‖²
    with sin α = η(n,f)·√d·σ/‖g‖ (``None`` when the variance condition
    fails, i.e. sin α ≥ 1 and the guarantee is void).  ``moment_ratios``
    maps r → E‖F‖^r / E‖G‖^r, the practical reading of condition (ii):
    bounded ratios mean the attack cannot inflate the aggregate's
    moments.  ``byzantine_selection_rate`` is diagnostic for
    selection-based rules.
    """

    aggregator: str
    attack: str
    n: int
    f: int
    dimension: int
    sigma: float
    grad_norm: float
    trials: int
    scalar_product: float
    threshold: float | None
    sin_alpha: float
    condition_holds: bool
    satisfied: bool
    moment_ratios: dict[int, float]
    byzantine_selection_rate: float
    mean_aggregate_error: float  # ‖Ê F − g‖

    def row(self) -> dict[str, object]:
        """Flat dict for table rendering in the benches."""
        return {
            "aggregator": self.aggregator,
            "attack": self.attack,
            "n": self.n,
            "f": self.f,
            "d": self.dimension,
            "sigma": self.sigma,
            "<EF,g>": round(self.scalar_product, 4),
            "bound": None if self.threshold is None else round(self.threshold, 4),
            "ok": self.satisfied,
            "byz_sel%": round(100 * self.byzantine_selection_rate, 1),
        }


def estimate_resilience(
    aggregator: Aggregator,
    attack: Attack | None,
    *,
    n: int,
    f: int,
    dimension: int,
    sigma: float,
    gradient: np.ndarray | None = None,
    trials: int = 500,
    seed: SeedLike = 0,
    batched: bool = True,
) -> ResilienceReport:
    """Monte-Carlo-verify Definition 3.2 for one (rule, attack) pair.

    ``gradient`` defaults to a fixed unit-norm-times-√d vector so the
    signal-to-noise ratio is controlled by σ alone.  ``attack=None``
    measures the f = 0 baseline (all proposals honest).

    ``batched=True`` (default) aggregates all trial stacks through the
    engine's batched kernels (:mod:`repro.core.batched`) in one
    ``(trials, n, d)`` tensor call instead of one Python dispatch per
    trial; the kernels are bit-for-bit identical to the per-trial path,
    so the report is the same either way (rules without a vectorized
    kernel transparently fall back to the per-trial loop).
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if f < 0 or f >= n:
        raise ConfigurationError(f"need 0 <= f < n, got n={n}, f={f}")
    if f > 0 and attack is None:
        raise ConfigurationError("f > 0 requires an attack")
    rng = as_generator(seed)
    if gradient is None:
        gradient = np.ones(dimension) / np.sqrt(dimension)
    gradient = np.asarray(gradient, dtype=np.float64)
    if gradient.shape != (dimension,):
        raise ConfigurationError(
            f"gradient must have shape ({dimension},), got {gradient.shape}"
        )
    grad_norm = float(np.linalg.norm(gradient))

    num_honest = n - f
    byz_indices = np.arange(num_honest, n)
    honest_indices = np.arange(num_honest)

    # Drawing honest proposals and crafting attacks stays sequential —
    # the attack shares the trial RNG stream, so the interleaving is part
    # of the reproducible protocol.  Only the aggregation is batched.
    stacks = np.empty((trials, n, dimension))
    honest_samples = np.empty((trials, dimension))
    for trial in range(trials):
        honest = gradient + sigma * rng.standard_normal((num_honest, dimension))
        honest_samples[trial] = honest[0]
        stacks[trial, :num_honest] = honest
        if f > 0:
            assert attack is not None
            context = AttackContext(
                round_index=trial,
                params=np.zeros(dimension),
                honest_gradients=honest,
                byzantine_indices=byz_indices,
                honest_indices=honest_indices,
                num_workers=n,
                rng=rng,
                aggregator=aggregator,
                true_gradient=gradient,
            )
            stacks[trial, num_honest:] = attack.craft(context)

    adapter = (
        make_batched_aggregator(aggregator)
        if batched
        else LoopBatchedAggregator([aggregator])
    )
    result = adapter.aggregate_batch(stacks)
    aggregates = result.vectors
    byz_hits = 0
    selecting_trials = 0
    for chosen in result.selected:
        if chosen.size:
            selecting_trials += 1
            if np.any(chosen >= num_honest):
                byz_hits += 1

    mean_aggregate = aggregates.mean(axis=0)
    scalar_product = float(mean_aggregate @ gradient)

    sin_alpha_raw = (
        eta(n, f) * np.sqrt(dimension) * sigma / grad_norm
        if 2 * f + 2 < n
        else np.inf
    )
    condition_holds = bool(sin_alpha_raw < 1.0)
    threshold = (
        float((1.0 - sin_alpha_raw) * grad_norm**2) if condition_holds else None
    )
    satisfied = (
        scalar_product >= threshold and scalar_product > 0
        if threshold is not None
        else False
    )

    agg_norms = np.linalg.norm(aggregates, axis=1)
    honest_norms = np.linalg.norm(honest_samples, axis=1)
    moment_ratios = {}
    for r in (2, 3, 4):
        denominator = float(np.mean(honest_norms**r))
        moment_ratios[r] = float(np.mean(agg_norms**r)) / max(denominator, 1e-300)

    return ResilienceReport(
        aggregator=aggregator.name,
        attack=attack.name if attack is not None else "none",
        n=n,
        f=f,
        dimension=dimension,
        sigma=float(sigma),
        grad_norm=grad_norm,
        trials=trials,
        scalar_product=scalar_product,
        threshold=threshold,
        sin_alpha=float(min(sin_alpha_raw, np.inf)),
        condition_holds=condition_holds,
        satisfied=bool(satisfied),
        moment_ratios=moment_ratios,
        byzantine_selection_rate=(
            byz_hits / selecting_trials if selecting_trials else 0.0
        ),
        mean_aggregate_error=float(np.linalg.norm(mean_aggregate - gradient)),
    )
