"""E7 — Full paper Fig. 5: the cost of resilience.

With *no* Byzantine workers, Krum converges slower than averaging at
equal mini-batch size: it selects a single proposal and forgoes the
n-fold variance reduction of the mean.  Increasing the mini-batch size
(reducing each worker's estimator variance) closes the gap — the paper's
"cost of resilience" observation.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.data.mnist_like import make_mnist_like
from repro.experiments.builders import build_dataset_simulation
from repro.experiments.reporting import format_table
from repro.models.mlp import MLPClassifier

NUM_WORKERS = 20
CONFIGURED_F = 6  # Krum still *configured* for f=6 — that's the cost
ROUNDS = 60  # short horizon: the speed difference is the measurement
BATCHES = (8, 32, 128)


def _final_loss(aggregator, batch_size, train, test):
    model = MLPClassifier(784, 10, hidden_sizes=(32,), init_seed=0)
    sim = build_dataset_simulation(
        model,
        train,
        aggregator=aggregator,
        num_workers=NUM_WORKERS,
        num_byzantine=0,
        batch_size=batch_size,
        learning_rate=0.3,
        eval_dataset=test,
        seed=11,
    )
    history = sim.run(ROUNDS, eval_every=20)
    return history.final_loss, 1.0 - history.final_accuracy


def bench_fig5_cost_of_resilience(benchmark):
    def run():
        train = make_mnist_like(1500, seed=0)
        test = make_mnist_like(400, seed=1)
        rows = []
        for batch in BATCHES:
            avg_loss, avg_err = _final_loss(Average(), batch, train, test)
            krum_loss, krum_err = _final_loss(
                Krum(f=CONFIGURED_F, strict=False), batch, train, test
            )
            rows.append((batch, avg_loss, krum_loss, krum_loss - avg_loss,
                         avg_err, krum_err))
        return rows

    rows = run_once(benchmark, run)
    emit(
        format_table(
            ["batch", "avg loss", "krum loss", "gap", "avg err", "krum err"],
            [list(r) for r in rows],
            title=(
                "Fig 5 — cost of resilience at f=0 "
                f"(n={NUM_WORKERS}, Krum configured for f={CONFIGURED_F}, "
                f"round {ROUNDS})"
            ),
        )
    )
    gaps = {batch: gap for batch, _a, _k, gap, _ae, _ke in rows}
    # Claim 1: at the smallest batch, Krum pays a real cost.
    assert gaps[BATCHES[0]] > 0, "Krum should trail averaging at small batch"
    # Claim 2: the gap shrinks as the batch grows (variance reduction
    # makes the single selected gradient almost as good as the mean).
    assert gaps[BATCHES[-1]] < gaps[BATCHES[0]], (
        f"gap did not close: {gaps}"
    )
    # Claim 3: at the largest batch both rules learn the task.
    _b, avg_loss, krum_loss, _g, avg_err, krum_err = rows[-1]
    assert krum_err < 0.2 and avg_err < 0.1
