"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def honest_cloud(rng: np.random.Generator) -> np.ndarray:
    """A tight cluster of 10 'honest' 8-dimensional gradient estimates."""
    center = np.full(8, 2.0)
    return center + 0.1 * rng.standard_normal((10, 8))
