"""Tests for the flawed closest-to-all rule (Figure 2)."""

import numpy as np

from repro.baselines.distance_based import ClosestToAll
from repro.core.krum import Krum


class TestClosestToAll:
    def test_selects_input_vector(self, rng):
        vectors = rng.standard_normal((8, 4))
        out = ClosestToAll().aggregate(vectors)
        assert any(np.array_equal(out, v) for v in vectors)

    def test_selects_most_central(self):
        vectors = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 0.1], [0.0, 1.0]])
        result = ClosestToAll().aggregate_detailed(vectors)
        # Vector 2 is nearest the barycenter (0.375, 0.275).
        assert int(result.selected[0]) == 2

    def test_tolerates_one_byzantine(self, honest_cloud):
        # With a single far outlier, the outlier cannot win: its summed
        # distance dwarfs everyone else's.
        byzantine = 1e6 * np.ones((1, 8))
        stack = np.vstack([honest_cloud, byzantine])
        result = ClosestToAll().aggregate_detailed(stack)
        assert int(result.selected[0]) < 10

    def test_figure2_collusion_defeats_it_but_not_krum(self, rng):
        """The paper's Figure 2: two colluders beat closest-to-all."""
        honest = np.full((9, 4), 3.0) + 0.05 * rng.standard_normal((9, 4))
        f = 3
        n = 9 + f
        decoy = np.full(4, 1e4)
        trojan = (honest.sum(axis=0) + (f - 1) * decoy) / (n - 1)
        stack = np.vstack([honest, np.tile(decoy, (f - 1, 1)), trojan[None, :]])

        flawed = ClosestToAll().aggregate_detailed(stack)
        assert int(flawed.selected[0]) == n - 1, "trojan must win closest-to-all"

        robust = Krum(f=f).aggregate_detailed(stack)
        assert int(robust.selected[0]) < 9, "Krum must still pick honest"

    def test_collusion_works_at_any_distance(self, rng):
        """Figure 2's point: the decoys can be arbitrarily remote."""
        honest = np.zeros((5, 3)) + 0.01 * rng.standard_normal((5, 3))
        for magnitude in (1e2, 1e5, 1e8):
            decoy = np.full(3, magnitude)
            n = 7
            trojan = (honest.sum(axis=0) + decoy) / (n - 1)
            stack = np.vstack([honest, decoy[None, :], trojan[None, :]])
            result = ClosestToAll().aggregate_detailed(stack)
            assert int(result.selected[0]) == 6
