"""registry-factory-contract: factory kwargs never leak raw TypeErrors.

Every name-based registry promises the same thing: building an entry
with keyword arguments that do not fit its factory's signature raises
:class:`ConfigurationError` naming the entry and its accepted
parameters — not the factory's raw ``TypeError`` (a bad scenario spec is
a configuration mistake, and engine code that condenses ``ReproError``
into breakdown rows must be able to see it as one).  This rule checks
every ``make_*`` function that splats kwargs into a call: it must either
route them through :func:`repro.utils.validation.check_factory_kwargs`
or wrap the call's ``TypeError`` in a ``ConfigurationError``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.base import LintRule, ModuleContext
from repro.lint.findings import Finding

__all__ = ["RegistryFactoryContractRule"]


def _has_kwargs_splat(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        isinstance(node, ast.Call)
        and any(keyword.arg is None for keyword in node.keywords)
        for node in ast.walk(func)
    )


def _calls_check_factory_kwargs(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute) else None
            )
            if name == "check_factory_kwargs":
                return True
    return False


def _handler_catches_typeerror(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True  # bare except catches TypeError too
    candidates = kind.elts if isinstance(kind, ast.Tuple) else [kind]
    for candidate in candidates:
        name = (
            candidate.id
            if isinstance(candidate, ast.Name)
            else candidate.attr
            if isinstance(candidate, ast.Attribute)
            else None
        )
        if name in ("TypeError", "Exception", "BaseException"):
            return True
    return False


def _raises_configuration_error(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            callee = exc.func if isinstance(exc, ast.Call) else exc
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute) else None
            )
            if name == "ConfigurationError":
                return True
    return False


def _wraps_typeerror(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                if _handler_catches_typeerror(
                    handler
                ) and _raises_configuration_error(handler):
                    return True
    return False


class RegistryFactoryContractRule(LintRule):
    """make_* factories validate kwargs or wrap TypeError."""

    name = "registry-factory-contract"
    description = (
        "every make_* factory that splats kwargs routes them through "
        "check_factory_kwargs or wraps TypeError in ConfigurationError"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) or not node.name.startswith("make_"):
                continue
            if not _has_kwargs_splat(node):
                continue
            if _calls_check_factory_kwargs(node) or _wraps_typeerror(node):
                continue
            yield self.finding(
                module,
                node,
                f"{node.name} splats kwargs into a factory call without "
                f"check_factory_kwargs or a TypeError->ConfigurationError "
                f"wrapper — bad kwargs would leak a raw TypeError instead "
                f"of the registry's ConfigurationError contract",
            )
