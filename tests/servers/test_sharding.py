"""Sharded parameter state and per-shard aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.core.staleness import KardamFilter
from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.servers.sharding import (
    ShardedAggregator,
    ShardedParameterState,
    shard_bounds,
)


class TestShardBounds:
    @pytest.mark.parametrize("dimension", [1, 2, 5, 20, 97])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_partition_is_contiguous_and_exhaustive(
        self, dimension, num_shards
    ):
        if num_shards > dimension:
            pytest.skip("every shard must own a coordinate")
        bounds = shard_bounds(dimension, num_shards)
        assert len(bounds) == num_shards
        assert bounds[0][0] == 0
        assert bounds[-1][1] == dimension
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo  # contiguous, no gaps or overlaps
        sizes = [hi - lo for lo, hi in bounds]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1  # balanced

    def test_first_shards_take_the_remainder(self):
        assert shard_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            shard_bounds(0, 1)
        with pytest.raises(ConfigurationError):
            shard_bounds(5, 0)
        with pytest.raises(ConfigurationError):
            shard_bounds(3, 4)  # a shard would own no coordinate


class TestShardedParameterState:
    def test_shards_are_writable_views_of_the_canonical_vector(self):
        state = ShardedParameterState(np.arange(5.0), 2)
        state.shard(0)[:] = 0.0
        assert state.params.tolist() == [0.0, 0.0, 0.0, 3.0, 4.0]

    def test_constructor_copies_the_input(self):
        params = np.arange(4.0)
        state = ShardedParameterState(params, 2)
        params[:] = 99.0
        assert state.params.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_update_matches_dense_sgd_step(self):
        rng = np.random.default_rng(0)
        params = rng.standard_normal(11)
        aggregate = rng.standard_normal(11)
        state = ShardedParameterState(params, 3)
        updated = state.update(aggregate, 0.1)
        np.testing.assert_array_equal(updated, params - 0.1 * aggregate)

    def test_update_rejects_shape_mismatch(self):
        state = ShardedParameterState(np.zeros(5), 2)
        with pytest.raises(DimensionMismatchError):
            state.update(np.zeros(4), 0.1)

    def test_shard_index_bounds(self):
        state = ShardedParameterState(np.zeros(5), 2)
        with pytest.raises(ConfigurationError):
            state.shard(2)


class TestShardedAggregator:
    def test_sharded_average_is_bitwise_average(self):
        """Averaging is coordinate-separable: the shard cut is an
        implementation detail, bit for bit (for multi-column shards —
        numpy's single-column reduction takes a different summation
        path, covered by the next test)."""
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((9, 13))
        plain = Average().aggregate_detailed(vectors).vector
        for num_shards in (1, 2, 5):
            sharded = (
                ShardedAggregator(Average(), num_shards)
                .aggregate_detailed(vectors)
                .vector
            )
            assert sharded.tobytes() == plain.tobytes()

    def test_one_shard_per_coordinate_agrees_to_rounding(self):
        """num_shards == dimension: numpy reduces a (n, 1) slice through
        a different summation order than a column of the full (n, d)
        reduction, so equality here is up to one ulp of the sum — not
        bitwise."""
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((9, 13))
        plain = Average().aggregate_detailed(vectors).vector
        sharded = (
            ShardedAggregator(Average(), 13).aggregate_detailed(vectors).vector
        )
        np.testing.assert_allclose(sharded, plain, rtol=0, atol=1e-15)

    def test_sharded_krum_is_a_different_rule(self):
        """Krum scores whole vectors; per-shard Krum can pick different
        winners per slice, so sharding legitimately changes the result."""
        rng = np.random.default_rng(2)
        vectors = rng.standard_normal((9, 12))
        plain = Krum(f=2).aggregate_detailed(vectors)
        sharded = ShardedAggregator(Krum(f=2), 4).aggregate_detailed(vectors)
        assert sharded.vector.tobytes() != plain.vector.tobytes()

    def test_selected_is_sorted_union_of_shard_winners(self):
        rng = np.random.default_rng(3)
        vectors = rng.standard_normal((9, 12))
        result = ShardedAggregator(Krum(f=2), 4).aggregate_detailed(vectors)
        assert result.selected.dtype == np.int64
        assert sorted(result.selected.tolist()) == result.selected.tolist()
        assert result.scores is None  # not comparable across shards
        bounds = shard_bounds(12, 4)
        winners = {
            int(Krum(f=2).aggregate_detailed(vectors[:, lo:hi]).selected[0])
            for lo, hi in bounds
        }
        assert set(result.selected.tolist()) == winners

    def test_staleness_aware_inner_receives_shard_slices(self):
        """A Kardam inner rule gets the staleness vector with the
        shard's used-params slice — concatenating the per-shard results
        equals running the wrapper per shard by hand."""
        rng = np.random.default_rng(4)
        vectors = rng.standard_normal((7, 10))
        used = rng.standard_normal((7, 10))
        staleness = np.array([0, 1, 0, 2, 0, 1, 0], dtype=np.int64)
        sharded = ShardedAggregator(KardamFilter(Average()), 3)
        result = sharded.aggregate_detailed_stale(
            vectors, staleness, used_params=used
        )
        expected = np.empty(10)
        for lo, hi in shard_bounds(10, 3):
            expected[lo:hi] = (
                KardamFilter(Average())
                .aggregate_detailed_stale(
                    vectors[:, lo:hi], staleness, used_params=used[:, lo:hi]
                )
                .vector
            )
        assert result.vector.tobytes() == expected.tobytes()

    def test_name_and_tolerance_delegation(self):
        sharded = ShardedAggregator(Krum(f=2), 3)
        assert sharded.name == "sharded(krum(f=2),shards=3)"
        sharded.check_tolerance(9)
        from repro.exceptions import ByzantineToleranceError

        with pytest.raises(ByzantineToleranceError):
            sharded.check_tolerance(5)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ShardedAggregator("average", 2)
        with pytest.raises(ConfigurationError):
            ShardedAggregator(Average(), 0)

    def test_more_shards_than_coordinates_rejected_at_aggregation(self):
        sharded = ShardedAggregator(Average(), 8)
        with pytest.raises(ConfigurationError):
            sharded.aggregate_detailed(np.zeros((4, 5)))
