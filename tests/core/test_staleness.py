"""Tests for the Kardam-style staleness filter."""

import numpy as np
import pytest

from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.core.registry import make_aggregator
from repro.core.staleness import KardamFilter, StalenessAwareAggregator
from repro.exceptions import (
    ByzantineToleranceError,
    ConfigurationError,
    DimensionMismatchError,
)


def _stack(rng, n=8, d=4):
    return rng.standard_normal((n, d))


class TestConstruction:
    def test_registry_builds_wrapped_rule(self):
        rule = make_aggregator("kardam", inner="krum", f=2)
        assert isinstance(rule, KardamFilter)
        assert isinstance(rule.inner, Krum)
        assert rule.inner.f == 2
        assert rule.name == "kardam(krum(f=2))"

    def test_f_not_forced_on_f_free_inner(self):
        rule = make_aggregator("kardam", inner="average", f=3)
        assert isinstance(rule.inner, Average)

    def test_name_encodes_non_default_config(self):
        rule = KardamFilter(
            Average(), dampening="exponential", gamma=0.9, drop_above=2
        )
        assert "dampening=exponential" in rule.name
        assert "gamma=0.9" in rule.name
        assert "drop_above=2" in rule.name

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="inner"):
            KardamFilter("not-a-rule")
        with pytest.raises(ConfigurationError, match="dampening"):
            KardamFilter(Average(), dampening="bogus")
        with pytest.raises(ConfigurationError, match="gamma"):
            KardamFilter(Average(), gamma=0.0)
        with pytest.raises(ConfigurationError, match="drop_above"):
            KardamFilter(Average(), drop_above=-1)
        with pytest.raises(ConfigurationError, match="lipschitz_quantile"):
            KardamFilter(Average(), lipschitz_quantile=1.5)
        with pytest.raises(ConfigurationError, match="window"):
            KardamFilter(Average(), window=0)

    def test_tolerance_delegates_to_inner(self):
        rule = KardamFilter(Krum(f=3))
        with pytest.raises(ByzantineToleranceError):
            rule.check_tolerance(6)  # krum needs 2f + 2 < n


class TestFreshIdentity:
    """Zero staleness must be *exactly* the inner rule — the degenerate
    case the async differential guarantee rests on."""

    def test_sync_call_equals_inner(self, rng):
        vectors = _stack(rng)
        rule = KardamFilter(Krum(f=2))
        expected = Krum(f=2).aggregate_detailed(vectors)
        got = rule.aggregate_detailed(vectors)
        assert got.vector.tobytes() == expected.vector.tobytes()
        np.testing.assert_array_equal(got.selected, expected.selected)

    def test_zero_staleness_equals_inner(self, rng):
        vectors = _stack(rng)
        rule = KardamFilter(Krum(f=2))
        expected = Krum(f=2).aggregate_detailed(vectors)
        got = rule.aggregate_detailed_stale(
            vectors,
            np.zeros(8, dtype=np.int64),
            used_params=np.zeros_like(vectors),
        )
        assert got.vector.tobytes() == expected.vector.tobytes()

    def test_dampening_factor_is_exactly_one_at_zero(self):
        for mode in ("none", "inverse", "exponential"):
            rule = KardamFilter(Average(), dampening=mode)
            assert rule.dampening_factor(np.array([0]))[0] == 1.0


class TestDampening:
    def test_inverse_dampening_scales_stale_rows(self, rng):
        vectors = np.ones((4, 3))
        staleness = np.array([0, 1, 3, 0])
        rule = KardamFilter(Average(), dampening="inverse")
        out = rule.aggregate_detailed_stale(vectors, staleness).vector
        expected = np.mean(
            vectors * (1.0 / (1.0 + staleness))[:, None], axis=0
        )
        np.testing.assert_allclose(out, expected)

    def test_exponential_dampening(self):
        vectors = np.ones((2, 2))
        rule = KardamFilter(
            Average(), dampening="exponential", gamma=0.5
        )
        out = rule.aggregate_detailed_stale(
            vectors, np.array([0, 2])
        ).vector
        np.testing.assert_allclose(out, np.mean([1.0, 0.25]) * np.ones(2))

    def test_none_dampening_keeps_values(self, rng):
        vectors = _stack(rng, n=5)
        rule = KardamFilter(Average(), dampening="none")
        out = rule.aggregate_detailed_stale(
            vectors, np.array([0, 1, 2, 3, 4])
        ).vector
        np.testing.assert_array_equal(out, vectors.mean(axis=0))


class TestDropping:
    def test_drop_above_removes_rows(self):
        vectors = np.stack([np.zeros(2), np.full(2, 100.0)])
        rule = KardamFilter(Average(), dampening="none", drop_above=1)
        out = rule.aggregate_detailed_stale(
            vectors, np.array([0, 5])
        ).vector
        np.testing.assert_array_equal(out, np.zeros(2))

    def test_selected_indices_map_back_to_original_rows(self, rng):
        vectors = _stack(rng, n=9)
        rule = KardamFilter(Krum(f=1), dampening="none", drop_above=0)
        staleness = np.array([3, 0, 0, 0, 0, 0, 0, 0, 3])
        result = rule.aggregate_detailed_stale(vectors, staleness)
        # The winner is a kept row, reported in *original* coordinates.
        assert result.selected[0] in range(1, 8)
        np.testing.assert_array_equal(
            result.vector, vectors[int(result.selected[0])]
        )
        # Scores expand back to n entries, NaN on dropped rows.
        assert result.scores.shape == (9,)
        assert np.isnan(result.scores[0]) and np.isnan(result.scores[8])

    def test_all_dropped_waives_the_drop(self):
        vectors = np.ones((3, 2))
        rule = KardamFilter(Average(), dampening="none", drop_above=0)
        out = rule.aggregate_detailed_stale(
            vectors, np.array([2, 2, 2])
        ).vector
        np.testing.assert_array_equal(out, np.ones(2))


class TestLipschitzFilter:
    def test_outlier_growth_rate_is_dropped(self):
        rule = KardamFilter(
            Average(),
            dampening="none",
            lipschitz_quantile=0.8,
            window=64,
        )
        rng = np.random.default_rng(0)
        n, d = 6, 3
        params = np.zeros((n, d))
        vectors = rng.standard_normal((n, d)) * 0.1
        # Warm up the coefficient window with tame rounds.
        for _ in range(6):
            new_params = params + 0.1
            new_vectors = vectors + 0.01 * rng.standard_normal((n, d))
            rule.aggregate_detailed_stale(
                new_vectors,
                np.zeros(n, dtype=np.int64),
                used_params=new_params,
            )
            params, vectors = new_params, new_vectors
        # Worker 0 suddenly jumps: huge ‖Δv‖ for the same ‖Δx‖.
        spiked = vectors.copy()
        spiked[0] += 1e6
        result = rule.aggregate_detailed_stale(
            spiked, np.zeros(n, dtype=np.int64), used_params=params + 0.1
        )
        assert abs(float(result.vector[0])) < 1e3  # spike filtered out

    def test_hard_dropped_rows_do_not_poison_the_window(self):
        """Regression: a proposal rejected by the drop_above cut must
        not contribute its growth rate to the accepted-coefficient
        window (else an adversary inflates the quantile threshold with
        always-dropped stale proposals, then slips a spike through)."""
        rule = KardamFilter(
            Average(),
            dampening="none",
            drop_above=0,
            lipschitz_quantile=0.5,
        )
        n, d = 4, 2
        params = np.zeros((n, d))
        vectors = np.full((n, d), 0.5)
        rule.aggregate_detailed_stale(
            vectors, np.zeros(n, dtype=np.int64), used_params=params
        )
        # Worker 0 is hard-dropped (stale) with an enormous growth rate.
        spiked = vectors.copy()
        spiked[0] += 1e9
        staleness = np.zeros(n, dtype=np.int64)
        staleness[0] = 5
        rule.aggregate_detailed_stale(
            spiked, staleness, used_params=params + 0.1
        )
        assert all(rate < 1e6 for rate in rule._coefficients)

    def test_without_used_params_filter_is_skipped(self, rng):
        rule = KardamFilter(
            Average(), dampening="none", lipschitz_quantile=0.5
        )
        vectors = _stack(rng, n=4)
        out = rule.aggregate_detailed_stale(
            vectors, np.zeros(4, dtype=np.int64)
        ).vector
        np.testing.assert_array_equal(out, vectors.mean(axis=0))


class TestValidationOfStaleInputs:
    def test_shape_checks(self, rng):
        rule = KardamFilter(Average())
        vectors = _stack(rng, n=4)
        with pytest.raises(DimensionMismatchError, match="staleness"):
            rule.aggregate_detailed_stale(vectors, np.zeros(3))
        with pytest.raises(DimensionMismatchError, match="used_params"):
            rule.aggregate_detailed_stale(
                vectors, np.zeros(4), used_params=np.zeros((4, 99))
            )
        with pytest.raises(ConfigurationError, match=">= 0"):
            rule.aggregate_detailed_stale(
                vectors, np.array([0, -1, 0, 0])
            )

    def test_is_staleness_aware(self):
        assert isinstance(KardamFilter(Average()), StalenessAwareAggregator)
        assert not isinstance(Average(), StalenessAwareAggregator)


class TestEffectiveFDegradation:
    """The follow-on to the drop filters: when they leave too few rows
    for the inner rule's ``2f + 2 < n`` precondition, the filter rebuilds
    the inner rule at the largest admissible effective ``f`` instead of
    dying mid-round; ``strict=True`` preserves the original error."""

    def _stale_stack(self, rng, n=7):
        vectors = rng.standard_normal((n, 4))
        # drop_above=0 keeps only the fresh rows: 3 of 7.
        staleness = np.array([0, 0, 0, 1, 1, 1, 1], dtype=np.int64)
        return vectors, staleness

    def test_default_degrades_instead_of_raising(self, rng):
        """The previously-breaking pairing: Krum(f=2) is admissible for
        the full n=7 stack but not for the 3 rows the hard staleness cut
        keeps.  The filter now degrades to Krum(f=0) and answers."""
        vectors, staleness = self._stale_stack(rng)
        rule = KardamFilter(Krum(f=2), drop_above=0)
        result = rule.aggregate_detailed_stale(vectors, staleness)
        # f_eff = 1 needs n > 4, f_eff = 0 needs n > 2: the search lands
        # on f = 0 for the 3-row stack.
        assert 0 in rule._degraded
        assert result.vector.shape == (4,)
        # The winner is one of the kept (fresh) rows, reported in the
        # caller's original row coordinates.
        assert result.selected.tolist() == [
            int(
                Krum(f=0)
                .aggregate_detailed(vectors[:3])
                .selected[0]
            )
        ]

    def test_strict_reraises_the_tolerance_error(self, rng):
        vectors, staleness = self._stale_stack(rng)
        rule = KardamFilter(Krum(f=2), drop_above=0, strict=True)
        with pytest.raises(ByzantineToleranceError):
            rule.aggregate_detailed_stale(vectors, staleness)

    def test_strict_shows_in_the_name(self):
        assert (
            KardamFilter(Krum(f=2), drop_above=0, strict=True).name
            == "kardam(krum(f=2),drop_above=0,strict=True)"
        )
        assert (
            KardamFilter(Krum(f=2), drop_above=0).name
            == "kardam(krum(f=2),drop_above=0)"
        )

    def test_full_stack_still_uses_the_declared_inner(self, rng):
        """No drop, no degradation: the path is byte-identical to the
        inner rule on the full stack."""
        vectors = rng.standard_normal((7, 4))
        rule = KardamFilter(Krum(f=2), drop_above=0)
        out = rule.aggregate_detailed_stale(
            vectors, np.zeros(7, dtype=np.int64)
        )
        expected = Krum(f=2).aggregate_detailed(vectors)
        assert out.vector.tobytes() == expected.vector.tobytes()
        assert not rule._degraded

    def test_registry_wires_the_inner_builder(self, rng):
        """Built through the registry, degradation rebuilds the inner
        rule via the same registry (other inner kwargs preserved)."""
        vectors = rng.standard_normal((9, 4))
        # 5 fresh rows survive the cut: multi-krum(f=3) needs n > 8,
        # f_eff=2 needs n > 6, f_eff=1 needs n > 4 — the search lands on
        # f_eff=1 with the inner m untouched.
        staleness = np.array([0, 0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int64)
        rule = make_aggregator(
            "kardam",
            inner="multi-krum",
            inner_kwargs={"m": 2},
            f=3,
            drop_above=0,
        )
        result = rule.aggregate_detailed_stale(vectors, staleness)
        assert result.vector.shape == (4,)
        degraded = rule._degraded[1]
        assert degraded.f == 1
        assert degraded.m == 2  # the non-f inner kwargs survived

    def test_registry_strict_passthrough(self, rng):
        vectors, staleness = self._stale_stack(rng)
        rule = make_aggregator(
            "kardam", inner="krum", f=2, drop_above=0, strict=True
        )
        with pytest.raises(ByzantineToleranceError):
            rule.aggregate_detailed_stale(vectors, staleness)

    def test_inner_without_f_reraises(self, rng):
        """An inner rule with no declared f has nothing to degrade to:
        the original error propagates even without strict."""

        class Picky(Average):
            def check_tolerance(self, num_workers):
                if num_workers < 5:
                    raise ByzantineToleranceError("need 5 rows")

        vectors, staleness = self._stale_stack(rng)
        rule = KardamFilter(Picky(), drop_above=0)
        with pytest.raises(ByzantineToleranceError):
            rule.aggregate_detailed_stale(vectors, staleness)

    def test_degraded_candidates_are_cached(self, rng):
        vectors, staleness = self._stale_stack(rng)
        rule = KardamFilter(Krum(f=2), drop_above=0)
        rule.aggregate_detailed_stale(vectors, staleness)
        first = rule._degraded[0]
        rule.aggregate_detailed_stale(vectors, staleness)
        assert rule._degraded[0] is first

    def test_invalid_strict_and_builder_arguments(self):
        with pytest.raises(ConfigurationError, match="strict"):
            KardamFilter(Average(), strict="yes")
        with pytest.raises(ConfigurationError, match="inner_builder"):
            KardamFilter(Average(), inner_builder=42)
