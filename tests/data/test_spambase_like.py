"""Tests for the procedural spambase substitute."""

import numpy as np
import pytest

from repro.data.spambase_like import NUM_FEATURES, make_spambase_like
from repro.exceptions import ConfigurationError
from repro.models.logistic import LogisticRegressionModel


class TestMakeSpambaseLike:
    def test_shapes(self):
        ds = make_spambase_like(100, seed=0)
        assert ds.inputs.shape == (100, NUM_FEATURES)
        assert NUM_FEATURES == 57  # matches real spambase
        assert ds.task == "binary"

    def test_reproducible(self):
        a = make_spambase_like(50, seed=9)
        b = make_spambase_like(50, seed=9)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_spam_fraction_respected(self):
        ds = make_spambase_like(5000, spam_fraction=0.4, seed=1)
        assert ds.targets.mean() == pytest.approx(0.4, abs=0.03)

    def test_features_non_negative(self):
        ds = make_spambase_like(200, seed=2)
        assert np.all(ds.inputs >= 0.0)

    def test_run_length_features_heavy_tailed(self):
        ds = make_spambase_like(2000, seed=3)
        run_features = ds.inputs[:, -3:]
        freq_features = ds.inputs[:, :-3]
        assert run_features.mean() > freq_features.mean()

    def test_task_is_learnable(self, rng):
        train = make_spambase_like(1500, seed=4)
        test = make_spambase_like(500, seed=5)
        model = LogisticRegressionModel(NUM_FEATURES)
        params = model.init_params(rng)
        for _step in range(400):
            params -= 0.3 * model.gradient(params, train.inputs, train.targets)
        assert model.accuracy(params, test.inputs, test.targets) > 0.8

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            make_spambase_like(10, spam_fraction=0.0)

    def test_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            make_spambase_like(1)
