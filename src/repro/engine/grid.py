"""Declarative scenario grids — the cartesian experiment spec.

The paper's figures are grids: seeds × attacks × aggregators × f (plus
workload knobs).  :class:`ScenarioGrid` declares such a grid once;
:meth:`ScenarioGrid.scenarios` expands it into concrete
:class:`ScenarioSpec` cells that the engine materializes and runs —
either one-by-one through :class:`~repro.distributed.TrainingSimulation`
(the loop executor) or stacked into ``(B, n, d)`` tensors by
:class:`~repro.engine.simulation.BatchedSimulation`.

Aggregator specs are registry names plus kwargs; ``f`` is injected into
any rule whose factory accepts an ``f`` parameter (Krum, trimmed mean,
...), while f-free rules (averaging, coordinate median) ride through
unchanged.  Cells with ``f = 0`` are attack-free by definition, so the
grid collapses the attack axis there to a single ``attack=None`` cell
instead of emitting one duplicate per attack.
"""

from __future__ import annotations

import inspect
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.registry import aggregator_factory, make_aggregator
from repro.exceptions import ConfigurationError

__all__ = ["ScenarioSpec", "ScenarioGrid"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-resolved cell of a scenario grid.

    Carries everything needed to build the cell's simulation: the
    workload knobs (dimension, sigma, curvature, learning-rate schedule),
    the cast (n workers, f Byzantine, slot placement), and the registry
    names + kwargs of the choice function and the attack.  ``attack`` is
    ``None`` for attack-free (f = 0) cells.
    """

    seed: int
    aggregator: str
    aggregator_kwargs: dict = field(default_factory=dict)
    attack: str | None = None
    attack_kwargs: dict = field(default_factory=dict)
    num_workers: int = 20
    num_byzantine: int = 0
    dimension: int = 10
    sigma: float = 0.1
    learning_rate: float = 0.1
    lr_timescale: float | None = 100.0
    curvature: float = 1.0
    byzantine_slots: str = "last"

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would raise on the kwargs
        # dicts; hash the scalar identity instead (equal specs have equal
        # labels, so the eq/hash contract holds — treat the kwargs dicts
        # as read-only).
        return hash(
            (self.label, self.dimension, self.sigma, self.learning_rate,
             self.lr_timescale, self.curvature, self.byzantine_slots)
        )

    @staticmethod
    def _with_kwargs(name: str, kwargs: dict) -> str:
        if not kwargs:
            return name
        inner = ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
        return f"{name}({inner})"

    @property
    def label(self) -> str:
        """Unique human-readable cell identifier used in result dicts.

        Encodes the kwargs of both the rule and the attack so grids can
        sweep rule *and* attack parameters (e.g. two Gaussian sigmas)
        without label collisions.
        """
        agg = self._with_kwargs(self.aggregator, self.aggregator_kwargs)
        attack = (
            self._with_kwargs(self.attack, self.attack_kwargs)
            if self.attack is not None
            else "no-attack"
        )
        return f"seed={self.seed}|{attack}|{agg}|f={self.num_byzantine}"


def _accepts_f(factory: object) -> bool:
    """Whether a registry factory takes an ``f`` keyword (Krum does,
    plain averaging does not)."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable sigs
        return False
    return "f" in signature.parameters


@dataclass(frozen=True)
class ScenarioGrid:
    """Cartesian product of seeds × attacks × aggregators × f × knobs.

    ``aggregators`` and ``attacks`` are sequences of
    ``(registry_name, kwargs)`` pairs; ``f_values`` the Byzantine counts
    to sweep.  The workload is the paper's analytic setting: a quadratic
    bowl of the given ``dimension``/``curvature`` with the Gaussian
    gradient oracle of noise ``sigma`` (Section 4's estimator model).

    Example::

        grid = ScenarioGrid(
            seeds=(0, 1), num_rounds=50, num_workers=15, dimension=100,
            attacks=(("gaussian", {"sigma": 200.0}),),
            aggregators=(("krum", {}), ("average", {})),
            f_values=(0, 3),
        )
        len(grid)          # 2 seeds × (1 attack × 2 rules × f=3  +  2 rules × f=0)
        grid.scenarios()   # the resolved ScenarioSpec cells
    """

    seeds: Sequence[int] = (0,)
    attacks: Sequence[tuple[str, Mapping]] = ()
    aggregators: Sequence[tuple[str, Mapping]] = (("krum", {}),)
    f_values: Sequence[int] = (0,)
    num_workers: int = 20
    num_rounds: int = 50
    dimension: int = 10
    sigma: float = 0.1
    learning_rate: float = 0.1
    lr_timescale: float | None = 100.0
    curvature: float = 1.0
    byzantine_slots: str = "last"

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("grid needs at least one seed")
        if not self.aggregators:
            raise ConfigurationError("grid needs at least one aggregator spec")
        if not self.f_values:
            raise ConfigurationError("grid needs at least one f value")
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.num_rounds < 1:
            raise ConfigurationError(
                f"num_rounds must be >= 1, got {self.num_rounds}"
            )
        if self.dimension < 1:
            raise ConfigurationError(
                f"dimension must be >= 1, got {self.dimension}"
            )
        if self.sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {self.sigma}")
        for f in self.f_values:
            if not 0 <= f < self.num_workers:
                raise ConfigurationError(
                    f"need 0 <= f < n for every f value, got f={f}, "
                    f"n={self.num_workers}"
                )
        if any(f > 0 for f in self.f_values) and not self.attacks:
            raise ConfigurationError(
                "grid sweeps f > 0 but declares no attacks"
            )

    def _aggregator_kwargs(self, name: str, kwargs: Mapping, f: int) -> dict:
        """Resolve a rule's kwargs for a cell, injecting the cell's f
        where the rule's factory accepts it."""
        resolved = dict(kwargs)
        if "f" not in resolved and _accepts_f(aggregator_factory(name)):
            resolved["f"] = f
        return resolved

    def scenarios(self) -> list[ScenarioSpec]:
        """Expand the grid into its concrete cells.

        For ``f = 0`` the attack axis collapses (there is no Byzantine
        slot to feed), so each (seed, aggregator) pair contributes one
        attack-free cell instead of one per attack.
        """
        cells: list[ScenarioSpec] = []
        attack_specs: Iterable[tuple[str, Mapping] | None]
        for seed in self.seeds:
            for f in self.f_values:
                attack_specs = self.attacks if f > 0 else (None,)
                for attack_spec in attack_specs:
                    for agg_name, agg_kwargs in self.aggregators:
                        attack_name = None
                        attack_kwargs: dict = {}
                        if attack_spec is not None:
                            attack_name, raw = attack_spec
                            attack_kwargs = dict(raw)
                        cells.append(
                            ScenarioSpec(
                                seed=int(seed),
                                aggregator=agg_name,
                                aggregator_kwargs=self._aggregator_kwargs(
                                    agg_name, agg_kwargs, f
                                ),
                                attack=attack_name,
                                attack_kwargs=attack_kwargs,
                                num_workers=self.num_workers,
                                num_byzantine=int(f),
                                dimension=self.dimension,
                                sigma=self.sigma,
                                learning_rate=self.learning_rate,
                                lr_timescale=self.lr_timescale,
                                curvature=self.curvature,
                                byzantine_slots=self.byzantine_slots,
                            )
                        )
        return cells

    def __len__(self) -> int:
        f_zero = sum(1 for f in self.f_values if f == 0)
        f_pos = len(self.f_values) - f_zero
        per_seed = len(self.aggregators) * (
            f_zero + f_pos * len(self.attacks)
        )
        return len(self.seeds) * per_seed

    def validate(self) -> None:
        """Eagerly build every cell's aggregator, surfacing bad registry
        names or (n, f) precondition violations before a long run."""
        for spec in self.scenarios():
            rule = make_aggregator(spec.aggregator, **spec.aggregator_kwargs)
            rule.check_tolerance(spec.num_workers)
