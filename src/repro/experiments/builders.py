"""Builders assembling simulations from configs, datasets and models."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.attacks.base import Attack
from repro.core.aggregator import Aggregator
from repro.data.dataset import Dataset
from repro.data.partition import (
    PARTITION_PROTOCOLS,
    dirichlet_partition,
    iid_partition,
    label_shard_partition,
)
from repro.distributed.delays import DelaySchedule
from repro.distributed.schedules import (
    ConstantSchedule,
    InverseTimeSchedule,
    LearningRateSchedule,
)
from repro.distributed.simulator import TrainingSimulation
from repro.exceptions import ConfigurationError
from repro.gradients.minibatch import MinibatchEstimator
from repro.models.base import ClassifierMixin, Model
from repro.models.quadratic import QuadraticBowl
from repro.servers.attacks import ServerAttack
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "quadratic_evaluator",
    "model_evaluator",
    "build_quadratic_simulation",
    "build_dataset_simulation",
]


def quadratic_evaluator(bowl: QuadraticBowl) -> Callable[[np.ndarray], dict[str, float]]:
    """Evaluator reporting exact cost, gradient norm and optimum distance."""

    def evaluate(params: np.ndarray) -> dict[str, float]:
        return {
            "loss": bowl.value(params),
            "grad_norm": float(np.linalg.norm(bowl.exact_gradient(params))),
            "dist_to_opt": bowl.distance_to_optimum(params),
        }

    return evaluate


def model_evaluator(
    model: Model, dataset: Dataset
) -> Callable[[np.ndarray], dict[str, float]]:
    """Evaluator reporting held-out loss (and accuracy for classifiers)."""

    def evaluate(params: np.ndarray) -> dict[str, float]:
        metrics = {"loss": model.loss(params, dataset.inputs, dataset.targets)}
        if isinstance(model, ClassifierMixin):
            metrics["accuracy"] = model.accuracy(
                params, dataset.inputs, dataset.targets
            )
        return metrics

    return evaluate


def _schedule(learning_rate: float, timescale: float | None) -> LearningRateSchedule:
    if timescale is None:
        return ConstantSchedule(learning_rate)
    return InverseTimeSchedule(learning_rate, timescale)


def build_quadratic_simulation(
    bowl: QuadraticBowl,
    *,
    aggregator: Aggregator,
    num_workers: int,
    num_byzantine: int,
    sigma: float,
    attack: Attack | None = None,
    learning_rate: float = 0.1,
    lr_timescale: float | None = 100.0,
    initial_params: np.ndarray | None = None,
    byzantine_slots: str | list[int] = "last",
    max_staleness: int = 0,
    delay_schedule: DelaySchedule | str | None = None,
    num_servers: int = 1,
    byzantine_servers: int = 0,
    num_shards: int = 1,
    server_attack: ServerAttack | str | None = None,
    halt_on_nonfinite: bool = False,
    seed: SeedLike = 0,
) -> TrainingSimulation:
    """Distributed SGD on an analytic quadratic bowl (Prop. 4.3 setting).

    Every honest worker uses the Gaussian oracle ``∇Q(x) + σ N(0, I)``;
    the exact gradient is exposed to omniscient attacks and to the
    evaluator (``grad_norm``/``dist_to_opt`` series).
    ``max_staleness``/``delay_schedule`` select the bounded-staleness
    round model; ``halt_on_nonfinite`` arms the server's non-finite
    guard.
    """
    num_honest = num_workers - num_byzantine
    if num_honest < 1:
        raise ConfigurationError(
            f"need at least one honest worker: n={num_workers}, f={num_byzantine}"
        )
    rng = as_generator(seed)
    initial = (
        bowl.init_params(rng) if initial_params is None else np.asarray(initial_params)
    )
    estimators = [bowl.as_estimator(sigma) for _ in range(num_honest)]
    return TrainingSimulation(
        aggregator=aggregator,
        schedule=_schedule(learning_rate, lr_timescale),
        honest_estimators=estimators,
        initial_params=initial,
        num_byzantine=num_byzantine,
        attack=attack,
        byzantine_slots=byzantine_slots,
        true_gradient_fn=bowl.exact_gradient,
        evaluate=quadratic_evaluator(bowl),
        max_staleness=max_staleness,
        delay_schedule=delay_schedule,
        num_servers=num_servers,
        byzantine_servers=byzantine_servers,
        num_shards=num_shards,
        server_attack=server_attack,
        halt_on_nonfinite=halt_on_nonfinite,
        seed=seed,
    )


def build_dataset_simulation(
    model: Model,
    train: Dataset,
    *,
    aggregator: Aggregator,
    num_workers: int,
    num_byzantine: int,
    attack: Attack | None = None,
    batch_size: int = 32,
    learning_rate: float = 0.1,
    lr_timescale: float | None = None,
    eval_dataset: Dataset | None = None,
    byzantine_slots: str | list[int] = "last",
    partition: str = "iid",
    dirichlet_alpha: float = 0.5,
    max_staleness: int = 0,
    delay_schedule: DelaySchedule | str | None = None,
    num_servers: int = 1,
    byzantine_servers: int = 0,
    num_shards: int = 1,
    server_attack: ServerAttack | str | None = None,
    halt_on_nonfinite: bool = False,
    seed: SeedLike = 0,
) -> TrainingSimulation:
    """Distributed SGD on a dataset sharded across honest workers.

    This is the full paper's experimental setting: each honest worker
    holds a disjoint shard and estimates gradients on uniform
    mini-batches from it.  The omniscient oracle exposed to attacks is
    the full-training-set gradient.

    ``partition`` selects the sharding protocol: ``"iid"`` (the paper's
    i.i.d. assumption), ``"label-shard"`` (each worker sees only a few
    classes) or ``"dirichlet"`` (skew controlled by ``dirichlet_alpha``).
    The non-i.i.d. options exist for the ablation the introduction
    motivates — workers whose honest gradients *look* Byzantine because
    their data is biased.
    """
    num_honest = num_workers - num_byzantine
    if num_honest < 1:
        raise ConfigurationError(
            f"need at least one honest worker: n={num_workers}, f={num_byzantine}"
        )
    if partition == "iid":
        shards = iid_partition(len(train), num_honest, seed=seed)
    elif partition == "label-shard":
        shards = label_shard_partition(train.targets, num_honest, seed=seed)
    elif partition == "dirichlet":
        shards = dirichlet_partition(
            train.targets,
            num_honest,
            alpha=dirichlet_alpha,
            min_per_worker=max(1, batch_size // 4),
            seed=seed,
        )
    else:
        raise ConfigurationError(
            f"partition must be one of {PARTITION_PROTOCOLS}, "
            f"got {partition!r}"
        )
    estimators = [
        MinibatchEstimator(
            model,
            train.inputs[shard],
            train.targets[shard],
            batch_size=batch_size,
        )
        for shard in shards
    ]
    initial = model.init_params(as_generator(seed))

    def full_gradient(params: np.ndarray) -> np.ndarray:
        return model.gradient(params, train.inputs, train.targets)

    evaluator = model_evaluator(model, eval_dataset if eval_dataset is not None else train)
    return TrainingSimulation(
        aggregator=aggregator,
        schedule=_schedule(learning_rate, lr_timescale),
        honest_estimators=estimators,
        initial_params=initial,
        num_byzantine=num_byzantine,
        attack=attack,
        byzantine_slots=byzantine_slots,
        true_gradient_fn=full_gradient,
        evaluate=evaluator,
        max_staleness=max_staleness,
        delay_schedule=delay_schedule,
        num_servers=num_servers,
        byzantine_servers=byzantine_servers,
        num_shards=num_shards,
        server_attack=server_attack,
        halt_on_nonfinite=halt_on_nonfinite,
        seed=seed,
    )
