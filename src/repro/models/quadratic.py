"""Strongly convex quadratic cost with a known optimum.

``Q(x) = ½ (x − x*)ᵀ A (x − x*) + c`` with symmetric positive-definite
``A``.  All conditions of Proposition 4.3 hold analytically (three-times
differentiable, non-negative, gradient pointing back toward the optimum
beyond any horizon), which makes it the reference workload for the
convergence experiments: the distance to ``x*`` and the exact gradient
norm are measurable at every round.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gradients.oracle import GaussianOracleEstimator
from repro.models.base import Model

__all__ = ["QuadraticBowl"]


class QuadraticBowl(Model):
    """Quadratic bowl; as a :class:`Model` it ignores batch data.

    The ``loss``/``gradient`` methods accept (and ignore) batch arguments
    so the model can ride through the same simulator as data-driven
    models; the idiomatic way to add stochasticity is
    :meth:`as_estimator`, which wraps the exact gradient in the Gaussian
    oracle of the paper's analysis.
    """

    def __init__(
        self,
        dimension: int,
        *,
        optimum: np.ndarray | None = None,
        curvature: np.ndarray | float = 1.0,
        offset: float = 0.0,
    ):
        if dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
        self._dimension = int(dimension)
        self.optimum = (
            np.zeros(dimension)
            if optimum is None
            else np.asarray(optimum, dtype=np.float64).copy()
        )
        if self.optimum.shape != (dimension,):
            raise ConfigurationError(
                f"optimum must have shape ({dimension},), got {self.optimum.shape}"
            )
        if np.isscalar(curvature) or np.ndim(curvature) == 0:
            if float(curvature) <= 0:
                raise ConfigurationError("curvature must be positive definite")
            self.curvature = float(curvature) * np.eye(dimension)
        else:
            self.curvature = np.asarray(curvature, dtype=np.float64).copy()
            if self.curvature.shape != (dimension, dimension):
                raise ConfigurationError(
                    f"curvature must be ({dimension}, {dimension}), "
                    f"got {self.curvature.shape}"
                )
            if not np.allclose(self.curvature, self.curvature.T):
                raise ConfigurationError("curvature matrix must be symmetric")
            eigenvalues = np.linalg.eigvalsh(self.curvature)
            if eigenvalues.min() <= 0:
                raise ConfigurationError(
                    f"curvature must be positive definite; min eigenvalue "
                    f"{eigenvalues.min():.3g}"
                )
        self.offset = float(offset)
        if self.offset < 0:
            raise ConfigurationError("offset must be non-negative (Q >= 0 required)")

    @property
    def dimension(self) -> int:
        return self._dimension

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        return self.optimum + rng.normal(0.0, 1.0, size=self._dimension) * 5.0

    def value(self, params: np.ndarray) -> float:
        """Exact cost ``Q(params)``."""
        delta = np.asarray(params, dtype=np.float64) - self.optimum
        return float(0.5 * delta @ self.curvature @ delta + self.offset)

    def exact_gradient(self, params: np.ndarray) -> np.ndarray:
        """Exact gradient ``∇Q(params) = A (params − x*)``."""
        delta = np.asarray(params, dtype=np.float64) - self.optimum
        return self.curvature @ delta

    def distance_to_optimum(self, params: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(params, dtype=np.float64) - self.optimum))

    # Model interface — batch arguments ignored (cost is analytic).
    def loss(self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray) -> float:
        del inputs, targets
        return self.value(params)

    def gradient(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        del inputs, targets
        return self.exact_gradient(params)

    def as_estimator(self, sigma: float) -> GaussianOracleEstimator:
        """The paper's Gaussian gradient estimator around this cost."""
        return GaussianOracleEstimator(self.exact_gradient, self._dimension, sigma)
