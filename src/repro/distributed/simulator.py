"""The synchronous-round training simulation.

``TrainingSimulation`` wires together the paper's cast: one reliable
parameter server, ``n − f`` correct workers with private i.i.d. gradient
estimators, ``f`` Byzantine slots whose proposals an omniscient
:class:`~repro.attacks.Attack` crafts after seeing everything, and a
choice function ``F``.  ``run`` executes rounds and records metrics.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.core.aggregator import Aggregator
from repro.distributed.messages import GradientMessage
from repro.distributed.metrics import RoundRecord, TrainingHistory
from repro.distributed.schedules import LearningRateSchedule
from repro.distributed.server import ParameterServer
from repro.distributed.worker import ByzantineWorker, HonestWorker
from repro.exceptions import ConfigurationError
from repro.gradients.base import GradientEstimator
from repro.utils.linalg import stack_vectors
from repro.utils.rng import SeedLike, spawn_generators

__all__ = ["TrainingSimulation"]

Evaluator = Callable[[np.ndarray], dict[str, float]]


class TrainingSimulation:
    """Distributed SGD under Byzantine attack, as one reproducible object.

    Parameters
    ----------
    aggregator:
        The server's choice function F.
    schedule:
        Learning-rate schedule γ_t.
    honest_estimators:
        One gradient estimator per correct worker (n − f of them).
    initial_params:
        The ``x_0`` vector.
    num_byzantine:
        f; requires ``attack`` when positive.
    attack:
        Crafts the f Byzantine proposals each round.
    byzantine_slots:
        Which worker ids the adversary controls: "last" (default),
        "first", or an explicit sequence of f distinct ids in [0, n).
        Krum's tie-break depends on identifiers, so the placement is an
        ablation knob.
    true_gradient_fn:
        Optional exact-gradient oracle ∇Q(x) exposed to omniscient
        attacks and recorded as ``grad_norm`` each evaluation.
    evaluate:
        Optional callable mapping params to metric dict; recognized keys
        ``loss``/``accuracy`` land in the record fields, everything else
        goes into ``extras``.
    seed:
        Root seed; worker streams and the attack stream are spawned from
        it independently.
    """

    def __init__(
        self,
        *,
        aggregator: Aggregator,
        schedule: LearningRateSchedule,
        honest_estimators: Sequence[GradientEstimator],
        initial_params: np.ndarray,
        num_byzantine: int = 0,
        attack: Attack | None = None,
        byzantine_slots: str | Sequence[int] = "last",
        true_gradient_fn: Callable[[np.ndarray], np.ndarray] | None = None,
        evaluate: Evaluator | None = None,
        seed: SeedLike = 0,
    ):
        if num_byzantine < 0:
            raise ConfigurationError(f"num_byzantine must be >= 0, got {num_byzantine}")
        if num_byzantine > 0 and attack is None:
            raise ConfigurationError(
                f"num_byzantine={num_byzantine} requires an attack"
            )
        if num_byzantine == 0 and attack is not None:
            raise ConfigurationError("an attack was supplied but num_byzantine=0")
        if not honest_estimators:
            raise ConfigurationError("need at least one honest estimator")

        self.num_honest = len(honest_estimators)
        self.num_byzantine = int(num_byzantine)
        self.num_workers = self.num_honest + self.num_byzantine
        aggregator.check_tolerance(self.num_workers)

        self.byzantine_ids = self._resolve_slots(byzantine_slots)
        honest_ids = [
            i for i in range(self.num_workers) if i not in set(self.byzantine_ids)
        ]

        streams = spawn_generators(seed, self.num_honest + 1)
        self.attack_rng = streams[-1]
        self.honest_workers = [
            HonestWorker(worker_id, estimator, rng)
            for worker_id, estimator, rng in zip(
                honest_ids, honest_estimators, streams[: self.num_honest]
            )
        ]
        self.byzantine_workers = [ByzantineWorker(i) for i in self.byzantine_ids]

        self.server = ParameterServer(initial_params, aggregator, schedule)
        dims = {est.dimension for est in honest_estimators}
        if dims != {self.server.dimension}:
            raise ConfigurationError(
                f"estimator dimensions {sorted(dims)} do not match parameter "
                f"dimension {self.server.dimension}"
            )
        self.attack = attack
        self.true_gradient_fn = true_gradient_fn
        self.evaluate = evaluate

    def _resolve_slots(self, spec: str | Sequence[int]) -> list[int]:
        n, f = self.num_workers, self.num_byzantine
        if isinstance(spec, str):
            if spec == "last":
                return list(range(n - f, n))
            if spec == "first":
                return list(range(f))
            raise ConfigurationError(
                f"byzantine_slots must be 'first', 'last' or explicit ids, "
                f"got {spec!r}"
            )
        slots = sorted(int(s) for s in spec)
        if len(slots) != f:
            raise ConfigurationError(
                f"expected {f} byzantine slots, got {len(slots)}"
            )
        if len(set(slots)) != len(slots) or any(s < 0 or s >= n for s in slots):
            raise ConfigurationError(
                f"byzantine slots must be distinct ids in [0, {n}), got {slots}"
            )
        return slots

    @property
    def params(self) -> np.ndarray:
        return self.server.params

    def run_round(self) -> RoundRecord:
        """Execute one synchronous round and return its record."""
        broadcast = self.server.broadcast()
        rate = self.server.schedule(broadcast.round_index)

        honest_messages = [w.compute(broadcast) for w in self.honest_workers]
        messages = list(honest_messages)

        if self.num_byzantine > 0:
            assert self.attack is not None
            context = AttackContext(
                round_index=broadcast.round_index,
                params=broadcast.params,
                honest_gradients=stack_vectors(
                    [m.vector for m in honest_messages]
                ),
                byzantine_indices=np.asarray(self.byzantine_ids, dtype=np.int64),
                honest_indices=np.asarray(
                    [w.worker_id for w in self.honest_workers], dtype=np.int64
                ),
                num_workers=self.num_workers,
                rng=self.attack_rng,
                aggregator=self.server.aggregator,
                true_gradient=(
                    self.true_gradient_fn(broadcast.params)
                    if self.true_gradient_fn is not None
                    else None
                ),
            )
            crafted = self.attack.craft(context)
            for worker, vector in zip(self.byzantine_workers, crafted):
                messages.append(
                    GradientMessage(
                        round_index=broadcast.round_index,
                        worker_id=worker.worker_id,
                        vector=vector,
                    )
                )

        result = self.server.step(messages)
        byzantine_set = set(self.byzantine_ids)
        selected = tuple(int(i) for i in result.selected)
        return RoundRecord(
            round_index=broadcast.round_index,
            learning_rate=rate,
            aggregate_norm=float(np.linalg.norm(result.vector)),
            params_norm=float(np.linalg.norm(self.server.params)),
            selected=selected,
            byzantine_selected=sum(1 for i in selected if i in byzantine_set),
        )

    def run(self, num_rounds: int, *, eval_every: int = 10) -> TrainingHistory:
        """Run ``num_rounds`` rounds, evaluating every ``eval_every``-th.

        The final round is always evaluated so ``history.final_loss`` is
        well defined when an evaluator is configured.
        """
        if num_rounds < 1:
            raise ConfigurationError(f"num_rounds must be >= 1, got {num_rounds}")
        if eval_every < 1:
            raise ConfigurationError(f"eval_every must be >= 1, got {eval_every}")
        history = TrainingHistory()
        for t in range(num_rounds):
            record = self.run_round()
            if t % eval_every == 0 or t == num_rounds - 1:
                record = self.evaluate_record(record)
            history.append(record)
        return history

    def evaluate_record(
        self, record: RoundRecord, params: np.ndarray | None = None
    ) -> RoundRecord:
        """Attach this simulation's evaluation metrics to a round record.

        ``params`` defaults to the server's current parameters; the
        batched engine executor passes the scenario's externally-tracked
        parameter vector instead (it advances parameters outside the
        server).
        """
        if params is None:
            params = self.server.params
        loss = accuracy = grad_norm = None
        extras: dict[str, float] = {}
        if self.evaluate is not None:
            metrics = dict(self.evaluate(params))
            loss = metrics.pop("loss", None)
            accuracy = metrics.pop("accuracy", None)
            grad_norm = metrics.pop("grad_norm", None)
            extras = {k: float(v) for k, v in metrics.items()}
        if grad_norm is None and self.true_gradient_fn is not None:
            grad_norm = float(np.linalg.norm(self.true_gradient_fn(params)))
        return RoundRecord(
            round_index=record.round_index,
            learning_rate=record.learning_rate,
            aggregate_norm=record.aggregate_norm,
            params_norm=record.params_norm,
            selected=record.selected,
            byzantine_selected=record.byzantine_selected,
            loss=None if loss is None else float(loss),
            accuracy=None if accuracy is None else float(accuracy),
            grad_norm=None if grad_norm is None else float(grad_norm),
            extras=extras,
        )
