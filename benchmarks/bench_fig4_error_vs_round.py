"""E6 — Full paper Fig. 4: error vs round at 33 % Byzantine workers.

The full paper (arXiv:1703.02757) trains an MLP on MNIST under the
omniscient attack and a shallow model on spambase under the Gaussian
attack, with 33 % Byzantine workers: averaging stalls or diverges, Krum
converges close to the attack-free baseline.  This bench reproduces both
panels on the substituted datasets (DESIGN.md §2).

Each panel's four arms run as ONE batched round loop through the
scenario-grid engine (:class:`repro.engine.BatchedSimulation`): the
engine stacks the arms' proposal matrices and aggregates them through
the batched kernels, which are bit-for-bit identical to running the
arms one at a time — so the reproduced figures are unchanged, only
faster.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.attacks.omniscient import OmniscientAttack
from repro.attacks.random_noise import GaussianAttack
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.data.mnist_like import make_mnist_like
from repro.data.spambase_like import make_spambase_like
from repro.engine import BatchedSimulation
from repro.experiments.builders import build_dataset_simulation
from repro.experiments.reporting import format_series, format_table
from repro.models.logistic import LogisticRegressionModel
from repro.models.mlp import MLPClassifier

NUM_WORKERS = 20
F = 6  # ~33 % of 20; satisfies 2f + 2 < n
ROUNDS = 300
EVAL_EVERY = 25


def _run_panel(arm_specs, build_sim):
    """Build one simulation per arm and run them as one batched loop."""
    sims = {
        label: build_sim(aggregator, f, attack)
        for label, (aggregator, f, attack) in arm_specs.items()
    }
    histories = BatchedSimulation(list(sims.values())).run(
        ROUNDS, eval_every=EVAL_EVERY
    )
    return dict(zip(sims.keys(), histories))


def _mnist_panel():
    train = make_mnist_like(1500, seed=0)
    test = make_mnist_like(400, seed=1)

    def build_sim(aggregator, f, attack):
        model = MLPClassifier(784, 10, hidden_sizes=(32,), init_seed=0)
        return build_dataset_simulation(
            model,
            train,
            aggregator=aggregator,
            num_workers=NUM_WORKERS,
            num_byzantine=f,
            attack=attack,
            batch_size=32,
            learning_rate=0.3,
            eval_dataset=test,
            seed=7,
        )

    return _run_panel(
        {
            "average f=0": (Average(), 0, None),
            "krum f=0": (Krum(f=F, strict=False), 0, None),
            "average 33% omniscient": (Average(), F, OmniscientAttack(scale=10.0)),
            "krum 33% omniscient": (Krum(f=F), F, OmniscientAttack(scale=10.0)),
        },
        build_sim,
    )


def _spambase_panel():
    train = make_spambase_like(3000, seed=0)
    test = make_spambase_like(800, seed=1)

    def build_sim(aggregator, f, attack):
        model = LogisticRegressionModel(57)
        return build_dataset_simulation(
            model,
            train,
            aggregator=aggregator,
            num_workers=NUM_WORKERS,
            num_byzantine=f,
            attack=attack,
            batch_size=32,
            learning_rate=0.05,
            eval_dataset=test,
            seed=7,
        )

    return _run_panel(
        {
            "average f=0": (Average(), 0, None),
            "krum f=0": (Krum(f=F, strict=False), 0, None),
            "average 33% gaussian": (Average(), F, GaussianAttack(sigma=200.0)),
            "krum 33% gaussian": (Krum(f=F), F, GaussianAttack(sigma=200.0)),
        },
        build_sim,
    )


def _emit_panel(title, arms):
    rounds, _ = next(iter(arms.values())).series("accuracy")
    emit(
        format_series(
            title,
            rounds,
            {
                label: 1.0 - history.series("accuracy")[1]
                for label, history in arms.items()
            },
        )
    )
    emit(
        format_table(
            ["arm", "final error", "final loss", "byz-sel%"],
            [
                [
                    label,
                    1.0 - history.final_accuracy,
                    history.final_loss,
                    100 * history.byzantine_selection_rate(),
                ]
                for label, history in arms.items()
            ],
            title=title + " — summary",
        )
    )


def bench_fig4_mnist_mlp_omniscient(benchmark):
    arms = run_once(benchmark, _mnist_panel)
    _emit_panel("Fig 4 (mnist-like panel) — test error vs round", arms)

    err = {label: 1.0 - h.final_accuracy for label, h in arms.items()}
    # Shape claims of the figure: averaging collapses under the attack;
    # Krum converges close to its attack-free baseline.
    assert err["average 33% omniscient"] > 0.5, "averaging must collapse"
    assert err["krum 33% omniscient"] < 0.15, "Krum must keep learning"
    assert err["average f=0"] < 0.1, "attack-free averaging sanity"
    assert err["krum 33% omniscient"] < err["krum f=0"] + 0.1, (
        "Krum under attack should track its attack-free baseline"
    )
    assert arms["krum 33% omniscient"].byzantine_selection_rate() < 0.1


def bench_fig4_spambase_logistic_gaussian(benchmark):
    arms = run_once(benchmark, _spambase_panel)
    _emit_panel("Fig 4 (spambase-like panel) — test error vs round", arms)

    err = {label: 1.0 - h.final_accuracy for label, h in arms.items()}
    assert err["average 33% gaussian"] > err["krum 33% gaussian"] + 0.05, (
        "Krum must beat averaging under the Gaussian attack"
    )
    assert err["krum 33% gaussian"] < 0.25
    assert err["krum 33% gaussian"] < err["krum f=0"] + 0.05
