"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_is_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(3)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_fresh_entropy(self):
        a = as_generator(None).random(8)
        b = as_generator(None).random(8)
        assert not np.array_equal(a, b)


class TestSpawnGenerators:
    def test_count_and_type(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5
        assert all(isinstance(g, np.random.Generator) for g in gens)

    def test_streams_are_independent(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(100) for g in gens]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not np.array_equal(draws[i], draws[j])

    def test_reproducible_from_root_seed(self):
        a = [g.random(4) for g in spawn_generators(9, 3)]
        b = [g.random(4) for g in spawn_generators(9, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_from_generator(self):
        root = np.random.default_rng(5)
        gens = spawn_generators(root, 2)
        assert len(gens) == 2
        assert not np.array_equal(gens[0].random(10), gens[1].random(10))

    def test_spawn_from_generator_reproducible(self):
        """Regression: every SeedLike alternative must actually spawn —
        a Generator seed used to depend on numpy having Generator.spawn
        and anything else leaked SeedSequence's raw TypeError."""
        a = [g.random(4) for g in spawn_generators(np.random.default_rng(9), 3)]
        b = [g.random(4) for g in spawn_generators(np.random.default_rng(9), 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_seed_sequence(self):
        gens = spawn_generators(np.random.SeedSequence(4), 2)
        assert len(gens) == 2

    def test_invalid_seed_type_raises_configuration_error(self):
        """Regression: a float/str seed raised SeedSequence's raw
        TypeError; it must be a ConfigurationError naming the accepted
        types (and the annotation's alternatives must all work)."""
        for bad in (3.5, "abc", [1, 2], object()):
            with pytest.raises(ConfigurationError, match="seed must be"):
                spawn_generators(bad, 2)

    def test_prefix_stability(self):
        """The first k children are identical however many streams are
        spawned — the simulator relies on this to add streams without
        perturbing existing worker/attack streams."""
        short = [g.random(4) for g in spawn_generators(7, 3)]
        long = [g.random(4) for g in spawn_generators(7, 5)[:3]]
        for x, y in zip(short, long):
            np.testing.assert_array_equal(x, y)
