"""Dense linear-algebra helpers used by the aggregation rules.

The performance-critical piece is :func:`pairwise_sq_distances`: Krum's
O(n² · d) cost (Lemma 4.1 of the paper) is exactly the cost of this one
matrix computation, so it is implemented with a single GEMM rather than a
Python double loop.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError

__all__ = [
    "pairwise_sq_distances",
    "batched_pairwise_sq_distances",
    "stack_vectors",
    "flatten_arrays",
    "unflatten_array",
]


def pairwise_sq_distances(
    vectors: np.ndarray, *, nonfinite_as_inf: bool = False
) -> np.ndarray:
    """Return the ``(n, n)`` matrix of squared euclidean distances.

    Uses the expansion ``||a - b||² = ||a||² + ||b||² - 2⟨a, b⟩`` so the
    dominant cost is one ``n×d`` by ``d×n`` matrix product — O(n²·d), the
    complexity Lemma 4.1 claims for Krum.  Floating-point cancellation can
    produce tiny negative values; these are clamped to zero and the
    diagonal is forced to exactly zero.

    ``nonfinite_as_inf=True`` maps every NaN/Inf entry of the result to
    ``+inf``: a Byzantine worker sending non-finite coordinates is treated
    as infinitely far from everyone (so distance-filtering rules discard
    it instead of propagating NaN through their scores).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise DimensionMismatchError(
            f"vectors must have shape (n, d), got {vectors.shape}"
        )
    with np.errstate(invalid="ignore", over="ignore"):
        sq_norms = np.einsum("ij,ij->i", vectors, vectors)
        distances = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (vectors @ vectors.T)
        np.maximum(distances, 0.0, out=distances)
    if nonfinite_as_inf:
        distances[~np.isfinite(distances)] = np.inf
    np.fill_diagonal(distances, 0.0)
    return distances


def batched_pairwise_sq_distances(
    vectors: np.ndarray,
    *,
    nonfinite_as_inf: bool = False,
    chunk_size: int | None = None,
) -> np.ndarray:
    """``(B, n, n)`` squared-distance matrices for a ``(B, n, d)`` batch.

    The batched analogue of :func:`pairwise_sq_distances`: every scenario
    in the batch gets the same GEMM expansion, computed with one stacked
    matrix product per chunk instead of B separate Python calls.  Each
    batch slice is numerically *identical* (bit-for-bit) to what the
    unbatched function returns for that slice — the engine's differential
    test harness relies on this.

    ``chunk_size`` bounds how many scenarios are expanded at once, so
    the *intermediates* (Gram-matrix GEMM workspace, non-finite masks)
    stay at ``chunk_size × n²`` floats.  The returned array itself is
    necessarily ``B × n²`` — consumers that only need a per-chunk view
    (e.g. :func:`repro.core.batched.batched_krum_scores`) should call
    this per chunk instead of materializing the full result.  ``None``
    processes the whole batch in one chunk.  The result is invariant to
    the chunk size because chunking only partitions the independent
    batch axis.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 3:
        raise DimensionMismatchError(
            f"vectors must have shape (B, n, d), got {vectors.shape}"
        )
    batch, n, _d = vectors.shape
    if chunk_size is None:
        chunk_size = max(batch, 1)
    if chunk_size < 1:
        raise DimensionMismatchError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    out = np.empty((batch, n, n))
    diagonal = np.arange(n)
    for start in range(0, batch, chunk_size):
        chunk = vectors[start : start + chunk_size]
        with np.errstate(invalid="ignore", over="ignore"):
            sq_norms = np.einsum("bij,bij->bi", chunk, chunk)
            distances = (
                sq_norms[:, :, None]
                + sq_norms[:, None, :]
                - 2.0 * (chunk @ chunk.transpose(0, 2, 1))
            )
            np.maximum(distances, 0.0, out=distances)
        if nonfinite_as_inf:
            distances[~np.isfinite(distances)] = np.inf
        distances[:, diagonal, diagonal] = 0.0
        out[start : start + chunk_size] = distances
    return out


def stack_vectors(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Stack a sequence of equal-length 1-d vectors into an ``(n, d)`` matrix."""
    if len(vectors) == 0:
        raise DimensionMismatchError("cannot stack an empty sequence of vectors")
    arrays = [np.asarray(v, dtype=np.float64) for v in vectors]
    first_shape = arrays[0].shape
    if any(a.ndim != 1 for a in arrays):
        raise DimensionMismatchError("stack_vectors expects 1-d vectors")
    if any(a.shape != first_shape for a in arrays):
        shapes = sorted({a.shape for a in arrays})
        raise DimensionMismatchError(f"vectors have inconsistent shapes: {shapes}")
    return np.stack(arrays, axis=0)


def flatten_arrays(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, list[tuple[int, ...]]]:
    """Flatten a list of arrays into one 1-d vector plus the shapes to undo it.

    This is how model parameters/gradients become the ``R^d`` vectors the
    parameter server aggregates.  Returns ``(flat, shapes)`` where
    ``unflatten_array(flat, shapes)`` restores the original list.
    """
    if len(arrays) == 0:
        raise DimensionMismatchError("cannot flatten an empty sequence of arrays")
    shapes = [tuple(np.asarray(a).shape) for a in arrays]
    flat = np.concatenate([np.asarray(a, dtype=np.float64).ravel() for a in arrays])
    return flat, shapes


def unflatten_array(flat: np.ndarray, shapes: Sequence[tuple[int, ...]]) -> list[np.ndarray]:
    """Invert :func:`flatten_arrays`: split ``flat`` back into shaped arrays."""
    flat = np.asarray(flat, dtype=np.float64)
    if flat.ndim != 1:
        raise DimensionMismatchError(f"flat must be 1-d, got shape {flat.shape}")
    sizes = [int(np.prod(shape, dtype=np.int64)) if shape else 1 for shape in shapes]
    total = int(sum(sizes))
    if flat.size != total:
        raise DimensionMismatchError(
            f"flat vector has {flat.size} entries but shapes require {total}"
        )
    out: list[np.ndarray] = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(flat[offset : offset + size].reshape(shape))
        offset += size
    return out
