"""Tests for the attack × defense tournament harness.

Small slates keep these fast; the full-registry league lives in
``benchmarks/bench_tournament.py``.  The load-bearing guarantees pinned
here: full-product coverage with no silent omissions, breakdown
isolation (a raising pairing becomes a reasoned row, not an aborted
tournament), and byte-identical payloads on a same-seed rerun — the
property that makes ``BENCH_tournament.json`` diffable.
"""

import json

import pytest

from repro.attacks.registry import available_attacks
from repro.core.registry import available_aggregators
from repro.exceptions import ConfigurationError
from repro.experiments.reporting import format_league_table
from repro.tournament import (
    AsyncCell,
    TournamentRunner,
    default_attack_slate,
    default_defense_slate,
)

SYNC = AsyncCell()
STALE = AsyncCell(
    max_staleness=2, delay_schedule="periodic", delay_kwargs={"tau": 2}
)
WORKLOAD = (("quadratic", {"dimension": 8, "sigma": 0.3}),)


def small_runner(**overrides):
    kwargs = dict(
        attacks=(("sign-flip", {}), ("gaussian", {"sigma": 50.0})),
        defenses=(("krum", {}), ("average", {})),
        seeds=(0,),
        workloads=WORKLOAD,
        async_cells=(SYNC,),
        num_workers=9,
        num_byzantine=2,
        num_rounds=8,
        eval_every=2,
    )
    kwargs.update(overrides)
    return TournamentRunner(**kwargs)


class TestAsyncCell:
    def test_labels(self):
        assert SYNC.label == "sync"
        assert STALE.label == "stale<=2|periodic"

    def test_hashable_slate_key(self):
        assert hash(STALE) == hash(
            AsyncCell(
                max_staleness=2,
                delay_schedule="periodic",
                delay_kwargs={"tau": 2},
            )
        )
        assert STALE != SYNC


class TestDefaultSlates:
    def test_defense_slate_covers_registry(self):
        slate = default_defense_slate(15, 3)
        assert [name for name, _ in slate] == list(available_aggregators())

    def test_attack_slate_covers_registry(self):
        slate = default_attack_slate(3)
        assert [name for name, _ in slate] == list(available_attacks())

    def test_attack_slate_single_slot_composite(self):
        slate = dict(default_attack_slate(1))
        assert slate["composite"]["parts"] == (("crash", {}, 1),)

    def test_attack_slate_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="num_byzantine >= 1"):
            default_attack_slate(0)


class TestRunnerValidation:
    def test_rejects_f_zero(self):
        with pytest.raises(ConfigurationError, match="num_byzantine >= 1"):
            small_runner(num_byzantine=0)

    def test_rejects_f_ge_n(self):
        with pytest.raises(ConfigurationError, match="f < n"):
            small_runner(num_byzantine=9)

    def test_rejects_duplicate_attack_names(self):
        with pytest.raises(ConfigurationError, match="duplicate attack"):
            small_runner(
                attacks=(("sign-flip", {}), ("sign-flip", {"scale": 2.0}))
            )

    def test_rejects_empty_slate(self):
        with pytest.raises(ConfigurationError, match="at least one seed"):
            small_runner(seeds=())

    def test_cells_per_pair(self):
        runner = small_runner(seeds=(0, 1), async_cells=(SYNC, STALE))
        assert runner.cells_per_pair == 4


class TestLeague:
    def test_full_product_coverage(self):
        result = small_runner().run()
        assert result.covers_product()
        assert len(result.rows) == 4
        for row in result.rows:
            assert row.cells == 1
            assert row.final_error is not None

    def test_row_lookup(self):
        result = small_runner().run()
        row = result.row("sign-flip", "krum")
        assert row.attack == "sign-flip"
        assert row.defense == "krum"
        with pytest.raises(KeyError):
            result.row("sign-flip", "bulyan")

    def test_robust_rule_beats_unfiltered_mean(self):
        """The tournament reproduces the paper's headline ordering:
        under an omniscient-style attack, krum's error ratio stays far
        below plain averaging's."""
        result = small_runner(
            attacks=(("gaussian", {"sigma": 100.0}),), num_rounds=12
        ).run()
        krum = result.row("gaussian", "krum")
        mean = result.row("gaussian", "average")
        assert krum.error_ratio is not None
        assert mean.breakdown or mean.error_ratio > krum.error_ratio

    def test_breakdown_isolation(self):
        """A pairing that raises (non-finite proposals pushing the
        geometric median past its convergence guard) becomes a reasoned
        breakdown row; other pairings in the same league are unharmed."""
        result = small_runner(
            attacks=(("non-finite", {}), ("sign-flip", {})),
            defenses=(("geometric-median", {}), ("krum", {})),
        ).run()
        assert result.covers_product()
        broken = result.row("non-finite", "geometric-median")
        assert broken.breakdown
        assert broken.breakdown_reason == "ConvergenceError"
        assert broken.final_error is None
        healthy = result.row("sign-flip", "krum")
        assert not healthy.breakdown
        assert healthy.final_error is not None

    def test_async_cells_change_measurement(self):
        sync_row = small_runner().run().row("sign-flip", "krum")
        stale_row = (
            small_runner(async_cells=(STALE,)).run().row("sign-flip", "krum")
        )
        assert sync_row.final_error != stale_row.final_error

    def test_same_seed_rerun_reproduces_payload_exactly(self):
        """The BENCH_tournament.json determinism contract: two runs of
        an identical configuration serialize byte-for-byte equal."""
        first = small_runner(async_cells=(SYNC, STALE)).run().to_payload()
        second = small_runner(async_cells=(SYNC, STALE)).run().to_payload()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_loop_and_batched_modes_agree(self):
        batched = small_runner(mode="batched").run().to_payload()
        loop = small_runner(mode="loop").run().to_payload()
        loop["tournament"]["mode"] = "batched"
        assert json.dumps(batched, sort_keys=True) == json.dumps(
            loop, sort_keys=True
        )


class TestLeagueReporting:
    def test_markdown_table(self):
        result = small_runner(
            attacks=(("non-finite", {}), ("sign-flip", {})),
            defenses=(("geometric-median", {}), ("krum", {})),
        ).run()
        text = format_league_table(result, title="Robustness league")
        lines = text.splitlines()
        assert lines[0] == "### Robustness league"
        assert "| Attack | Defense |" in lines[2]
        # one markdown row per league row, after the two header lines
        assert len(lines) == 4 + len(result.rows)
        assert any("**yes** (ConvergenceError)" in line for line in lines)

    def test_empty_league_rejected(self):
        class Empty:
            rows = ()

        with pytest.raises(ConfigurationError, match="at least one row"):
            format_league_table(Empty())
