"""Tests for the workload registry and the workload-parametric grid API."""

import numpy as np
import pytest

from repro.core.krum import Krum
from repro.engine import (
    ScenarioGrid,
    ScenarioSpec,
    available_workloads,
    build_scenario_simulation,
    make_workload,
    register_workload,
    run_grid,
    workload_factory,
)
from repro.engine.workloads import (
    QUADRATIC_DEFAULTS,
    DatasetWorkload,
    QuadraticWorkload,
    workload_key,
)
from repro.exceptions import ConfigurationError
from repro.experiments.builders import build_quadratic_simulation
from repro.gradients.minibatch import MinibatchEstimator
from repro.models.quadratic import QuadraticBowl

EXPECTED_BUILTINS = {
    "quadratic",
    "logistic-spambase",
    "softmax-mnist",
    "mlp-mnist",
}

SMALL_DATASET_KWARGS = {
    "num_train": 64,
    "num_eval": 32,
    "batch_size": 8,
}


class TestRegistry:
    def test_builtins_registered(self):
        assert EXPECTED_BUILTINS <= set(available_workloads())

    def test_round_trip_name(self):
        """name + kwargs → instance → name, for every built-in."""
        for name in EXPECTED_BUILTINS:
            kwargs = {} if name == "quadratic" else dict(SMALL_DATASET_KWARGS)
            workload = make_workload(name, kwargs)
            assert workload.name == name
            assert workload.dimension >= 1

    def test_unknown_workload_names_available(self):
        with pytest.raises(ConfigurationError, match="unknown workload") as err:
            make_workload("imagenet")
        assert "quadratic" in str(err.value)

    def test_bad_kwargs_name_workload_and_parameters(self):
        """Same contract make_attack got in PR 2: the error names the
        workload and the parameters its factory accepts."""
        with pytest.raises(ConfigurationError, match="logistic-spambase") as err:
            make_workload("logistic-spambase", {"num_sampels": 100})
        message = str(err.value)
        assert "accepted parameters" in message
        assert "num_train" in message

    def test_factory_introspection(self):
        assert workload_factory("quadratic") is QuadraticWorkload

    def test_registration_requires_name(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            register_workload("", QuadraticWorkload)

    def test_workload_key_handles_unhashable_kwargs(self):
        key = workload_key("quadratic", {"dimension": [1, 2]})
        assert key == workload_key("quadratic", {"dimension": [1, 2]})
        assert key != workload_key("quadratic", {"dimension": (1, 2)})
        hash(key)  # must be usable as a dict key


class TestQuadraticWorkload:
    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="dimension"):
            make_workload("quadratic", {"dimension": 0})
        with pytest.raises(ConfigurationError, match="sigma"):
            make_workload("quadratic", {"sigma": -1.0})
        with pytest.raises(ConfigurationError, match="curvature"):
            make_workload("quadratic", {"curvature": 0.0})

    def test_matches_direct_builder(self):
        """The workload's simulation is trajectory-identical to the
        pre-redesign direct build_quadratic_simulation path."""
        workload = make_workload(
            "quadratic", {"dimension": 6, "sigma": 0.3, "curvature": 2.0}
        )
        via_workload = workload.build(
            aggregator=Krum(f=0, strict=False),
            num_workers=5,
            num_byzantine=0,
            attack=None,
            learning_rate=0.1,
            lr_timescale=100.0,
            byzantine_slots="last",
            seed=3,
        )
        direct = build_quadratic_simulation(
            QuadraticBowl(6, curvature=2.0),
            aggregator=Krum(f=0, strict=False),
            num_workers=5,
            num_byzantine=0,
            sigma=0.3,
            learning_rate=0.1,
            lr_timescale=100.0,
            seed=3,
        )
        a = via_workload.run(5, eval_every=2)
        b = direct.run(5, eval_every=2)
        assert a.records == b.records

    def test_bowl_is_shared_across_builds(self):
        workload = make_workload("quadratic", {"dimension": 4})
        sims = [
            workload.build(
                aggregator=Krum(f=0, strict=False),
                num_workers=5,
                num_byzantine=0,
                attack=None,
                learning_rate=0.1,
                lr_timescale=None,
                byzantine_slots="last",
                seed=s,
            )
            for s in (0, 1)
        ]
        fns = {
            w.estimator.gradient_fn
            for sim in sims
            for w in sim.honest_workers
        }
        assert len(fns) == 1  # one bowl serves every cell


class TestDatasetWorkloads:
    @pytest.mark.parametrize(
        "name,dimension",
        [
            ("logistic-spambase", 58),  # 57 features + bias
            ("softmax-mnist", 7850),  # 784·10 + 10
        ],
    )
    def test_declared_dimension(self, name, dimension):
        workload = make_workload(name, SMALL_DATASET_KWARGS)
        assert workload.dimension == dimension

    def test_mlp_dimension_matches_architecture(self):
        workload = make_workload(
            "mlp-mnist", dict(SMALL_DATASET_KWARGS, hidden_sizes=(16,))
        )
        assert workload.dimension == 784 * 16 + 16 + 16 * 10 + 10

    def test_lazy_materialization(self):
        """Constructing a dataset workload must not generate data —
        that is what makes grid validation cheap."""
        workload = make_workload("softmax-mnist", SMALL_DATASET_KWARGS)
        assert isinstance(workload, DatasetWorkload)
        assert workload._data is None
        workload.build(
            aggregator=Krum(f=0, strict=False),
            num_workers=4,
            num_byzantine=0,
            attack=None,
            learning_rate=0.1,
            lr_timescale=None,
            byzantine_slots="last",
            seed=0,
        )
        assert workload._data is not None

    def test_datasets_cached_across_builds(self):
        workload = make_workload("logistic-spambase", SMALL_DATASET_KWARGS)
        first = workload.datasets
        assert workload.datasets is first

    def test_build_uses_minibatch_estimators(self):
        workload = make_workload("logistic-spambase", SMALL_DATASET_KWARGS)
        sim = workload.build(
            aggregator=Krum(f=0, strict=False),
            num_workers=4,
            num_byzantine=0,
            attack=None,
            learning_rate=0.1,
            lr_timescale=None,
            byzantine_slots="last",
            seed=0,
        )
        assert all(
            isinstance(w.estimator, MinibatchEstimator)
            for w in sim.honest_workers
        )

    def test_invalid_partition_rejected(self):
        with pytest.raises(ConfigurationError, match="partition"):
            make_workload(
                "logistic-spambase",
                dict(SMALL_DATASET_KWARGS, partition="striped"),
            )

    @pytest.mark.parametrize("partition", ["iid", "dirichlet", "label-shard"])
    def test_partitions_materialize(self, partition):
        workload = make_workload(
            "softmax-mnist",
            dict(
                SMALL_DATASET_KWARGS,
                num_train=128,
                partition=partition,
            ),
        )
        sim = workload.build(
            aggregator=Krum(f=0, strict=False),
            num_workers=4,
            num_byzantine=0,
            attack=None,
            learning_rate=0.1,
            lr_timescale=None,
            byzantine_slots="last",
            seed=0,
        )
        history = sim.run(2, eval_every=1)
        assert history.final_loss is not None


class TestMinibatchTwoPhase:
    def test_estimate_equals_draw_then_gradient(self, rng):
        """The split API must be bit-for-bit the composed estimate."""
        from repro.data.spambase_like import make_spambase_like
        from repro.models.logistic import LogisticRegressionModel

        data = make_spambase_like(64, seed=0)
        model = LogisticRegressionModel(57)
        estimator = MinibatchEstimator(
            model, data.inputs, data.targets, batch_size=8
        )
        params = model.init_params(rng)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        direct = estimator.estimate(params, rng_a)
        split = estimator.gradient_at(params, estimator.draw_indices(rng_b))
        assert direct.tobytes() == split.tobytes()
        # Both consumed the stream identically.
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)

    def test_subclass_overriding_estimate_takes_generic_path(self):
        """A MinibatchEstimator subclass whose estimate() does not
        decompose into draw_indices + gradient_at must not be routed
        through the two-phase fast path — the loop/batched identity has
        to hold for it too (via the generic per-worker estimate path)."""
        from repro.baselines.average import Average
        from repro.data.spambase_like import make_spambase_like
        from repro.distributed.schedules import ConstantSchedule
        from repro.distributed.simulator import TrainingSimulation
        from repro.engine import BatchedSimulation
        from repro.models.logistic import LogisticRegressionModel

        class ScaledEstimator(MinibatchEstimator):
            def estimate(self, params, rng):
                # Consumes extra randomness: not draw+gradient composable.
                return super().estimate(params, rng) * rng.uniform(0.5, 1.5)

        data = make_spambase_like(64, seed=0)
        model = LogisticRegressionModel(57)

        def build():
            return TrainingSimulation(
                aggregator=Average(),
                schedule=ConstantSchedule(0.1),
                honest_estimators=[
                    ScaledEstimator(
                        model, data.inputs, data.targets, batch_size=8
                    )
                    for _ in range(4)
                ],
                initial_params=model.init_params(
                    np.random.default_rng(0)
                ),
                seed=5,
            )

        batched = BatchedSimulation([build()])
        assert not batched._scenarios[0].minibatch
        batched_histories = batched.run(4, eval_every=2)
        loop_history = build().run(4, eval_every=2)
        assert batched_histories[0].records == loop_history.records


class TestSpecShim:
    def test_old_scalar_fields_configure_quadratic(self):
        spec = ScenarioSpec(seed=0, aggregator="average", dimension=7, sigma=0.4)
        assert spec.workload == "quadratic"
        assert spec.workload_kwargs["dimension"] == 7
        assert spec.workload_kwargs["sigma"] == 0.4
        assert spec.dimension == 7  # read-back stays intact
        assert spec.curvature == QUADRATIC_DEFAULTS["curvature"]

    def test_scalar_fields_rejected_on_dataset_workloads(self):
        with pytest.raises(ConfigurationError, match="quadratic-workload"):
            ScenarioSpec(
                seed=0,
                aggregator="average",
                workload="logistic-spambase",
                dimension=7,
            )

    def test_conflicting_scalar_and_kwarg_rejected(self):
        with pytest.raises(ConfigurationError, match="pick one"):
            ScenarioSpec(
                seed=0,
                aggregator="average",
                dimension=7,
                workload_kwargs={"dimension": 9},
            )

    def test_equivalent_spellings_compare_equal(self):
        old_style = ScenarioSpec(seed=0, aggregator="average", dimension=7)
        new_style = ScenarioSpec(
            seed=0,
            aggregator="average",
            workload_kwargs=dict(QUADRATIC_DEFAULTS, dimension=7),
        )
        assert old_style == new_style
        assert old_style.label == new_style.label
        assert hash(old_style) == hash(new_style)

    def test_dataset_spec_builds(self):
        spec = ScenarioSpec(
            seed=0,
            aggregator="average",
            workload="logistic-spambase",
            workload_kwargs=dict(SMALL_DATASET_KWARGS),
            num_workers=4,
        )
        sim = build_scenario_simulation(spec)
        assert sim.num_workers == 4
        assert sim.server.dimension == 58


class TestGridWorkloadAxis:
    def _common(self):
        return dict(
            seeds=(0,),
            attacks=(("gaussian", {"sigma": 10.0}),),
            aggregators=(("average", {}),),
            f_values=(0, 2),
            num_workers=7,
            num_rounds=3,
        )

    def test_workloads_axis_expands(self):
        grid = ScenarioGrid(
            workloads=(
                ("quadratic", {"dimension": 5}),
                ("logistic-spambase", dict(SMALL_DATASET_KWARGS)),
            ),
            **self._common(),
        )
        cells = grid.scenarios()
        assert len(grid) == len(cells) == 4
        assert {c.workload for c in cells} == {
            "quadratic",
            "logistic-spambase",
        }

    def test_axis_and_singular_pair_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            ScenarioGrid(
                workload="softmax-mnist",
                workloads=(("quadratic", {}),),
                **self._common(),
            )

    def test_axis_and_deprecated_scalars_conflict(self):
        with pytest.raises(ConfigurationError, match="workloads axis"):
            ScenarioGrid(
                workloads=(("quadratic", {}),),
                dimension=5,
                **self._common(),
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one workload"):
            ScenarioGrid(workloads=(), **self._common())

    def test_unknown_workload_fails_at_declaration(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            ScenarioGrid(workload="imagenet", **self._common())

    def test_bad_workload_kwargs_fail_at_declaration(self):
        with pytest.raises(ConfigurationError, match="accepted parameters"):
            ScenarioGrid(
                workload="softmax-mnist",
                workload_kwargs={"bogus": 1},
                **self._common(),
            )

    def test_old_grid_call_sites_construct_equivalent_quadratic_grid(self):
        """Acceptance criterion: pre-redesign ScenarioGrid(...) with the
        scalar workload knobs still builds the equivalent grid."""
        old_style = ScenarioGrid(dimension=5, sigma=0.3, **self._common())
        new_style = ScenarioGrid(
            workload_kwargs={"dimension": 5, "sigma": 0.3},
            **self._common(),
        )
        assert old_style.scenarios() == new_style.scenarios()
        assert old_style.dimension == 5  # read-back stays intact
        old_result = run_grid(old_style, mode="batched", eval_every=2)
        new_result = run_grid(new_style, mode="batched", eval_every=2)
        assert set(old_result.histories) == set(new_result.histories)
        for label in old_result.histories:
            assert (
                old_result.final_params[label].tobytes()
                == new_result.final_params[label].tobytes()
            )

    def test_distinct_workloads_deduplicates(self):
        grid = ScenarioGrid(
            workloads=(
                ("quadratic", {"dimension": 5}),
                ("quadratic", {"dimension": 5}),
                ("quadratic", {"dimension": 6}),
            ),
            seeds=(0,),
            aggregators=(("average", {}),),
            f_values=(0,),
            num_workers=5,
        )
        assert len(grid.distinct_workloads()) == 2


class TestRunGridDatasetWorkloads:
    def test_minibatch_workload_loop_vs_batched_bitwise(self):
        """The differential guarantee on a minibatch workload: every
        record and final parameter bit-for-bit across executors."""
        grid = ScenarioGrid(
            seeds=(0, 1),
            workload="logistic-spambase",
            workload_kwargs=dict(SMALL_DATASET_KWARGS, partition="dirichlet"),
            attacks=(("sign-flip", {"scale": 4.0}),),
            aggregators=(("krum", {}), ("average", {})),
            f_values=(0, 2),
            num_workers=7,
            num_rounds=6,
            learning_rate=0.1,
            lr_timescale=None,
        )
        loop = run_grid(grid, mode="loop", eval_every=2)
        batched = run_grid(grid, mode="batched", eval_every=2)
        assert set(loop.histories) == set(batched.histories)
        for label in loop.histories:
            assert (
                loop.final_params[label].tobytes()
                == batched.final_params[label].tobytes()
            ), f"final params diverged for {label}"
            assert (
                loop.histories[label].records
                == batched.histories[label].records
            ), f"history diverged for {label}"

    def test_mixed_dimension_grid_batches_per_dimension(self):
        grid = ScenarioGrid(
            workloads=(
                ("quadratic", {"dimension": 5}),
                ("quadratic", {"dimension": 9}),
                ("logistic-spambase", dict(SMALL_DATASET_KWARGS)),
            ),
            seeds=(0,),
            aggregators=(("average", {}),),
            f_values=(0,),
            num_workers=5,
            num_rounds=3,
        )
        result = run_grid(grid, mode="batched", eval_every=2)
        shapes = {
            spec.label: result.final_params[spec.label].shape
            for spec in result.specs
        }
        assert set(shapes.values()) == {(5,), (9,), (58,)}
        assert result.native_fraction == 1.0

    def test_workload_instances_shared_across_cells(self, monkeypatch):
        """run_grid must materialize each distinct workload spec once."""
        import repro.engine.runner as runner_module

        calls = []
        real = runner_module.make_workload

        def counting(name, kwargs=None):
            calls.append(name)
            return real(name, kwargs)

        monkeypatch.setattr(runner_module, "make_workload", counting)
        grid = ScenarioGrid(
            seeds=(0, 1, 2),
            workload="logistic-spambase",
            workload_kwargs=dict(SMALL_DATASET_KWARGS),
            aggregators=(("krum", {}), ("average", {})),
            f_values=(0,),
            num_workers=5,
            num_rounds=2,
        )
        run_grid(grid, mode="batched", eval_every=1)
        assert calls == ["logistic-spambase"]
