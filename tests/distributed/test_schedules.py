"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.distributed.schedules import (
    ConstantSchedule,
    InverseTimeSchedule,
    StepDecaySchedule,
)
from repro.exceptions import ConfigurationError


class TestConstantSchedule:
    def test_constant(self):
        schedule = ConstantSchedule(0.3)
        assert schedule(0) == schedule(100) == 0.3

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.0)


class TestInverseTimeSchedule:
    def test_initial_value(self):
        assert InverseTimeSchedule(0.5, timescale=10)(0) == 0.5

    def test_halves_at_timescale(self):
        schedule = InverseTimeSchedule(0.5, timescale=10)
        assert schedule(10) == pytest.approx(0.25)

    def test_prop43_conditions(self):
        """Σ γ_t diverges while Σ γ_t² converges (condition (ii))."""
        schedule = InverseTimeSchedule(1.0, timescale=1.0)
        rates = np.array([schedule(t) for t in range(100_000)])
        # Partial sums of γ grow without bound (log t); compare windows.
        first_half = rates[:50_000].sum()
        total = rates.sum()
        assert total > first_half + 0.5  # still growing
        # Partial sums of γ² approach a finite limit: the tail is tiny.
        tail_sq = (rates[50_000:] ** 2).sum()
        assert tail_sq < 1e-4 * (rates[:50_000] ** 2).sum()

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            InverseTimeSchedule(0.0)
        with pytest.raises(ConfigurationError):
            InverseTimeSchedule(0.1, timescale=0.0)


class TestStepDecaySchedule:
    def test_decay_boundaries(self):
        schedule = StepDecaySchedule(1.0, period=10, factor=0.5)
        assert schedule(9) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            StepDecaySchedule(1.0, period=5, factor=1.0)


class TestScheduleCall:
    def test_rejects_negative_round(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.1)(-1)
