"""Simple synthetic task generators (blobs, linear, logistic)."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["make_blobs", "make_linear_regression", "make_logistic_data"]


def make_blobs(
    num_samples: int,
    *,
    num_classes: int = 3,
    num_features: int = 2,
    spread: float = 1.0,
    center_box: float = 10.0,
    center_seed: int = 0,
    seed: SeedLike = None,
) -> Dataset:
    """Isotropic Gaussian clusters, one per class, centers drawn uniformly.

    ``seed`` controls the *samples*; ``center_seed`` controls the cluster
    centers (the distribution's structure).  Keeping ``center_seed``
    fixed while varying ``seed`` yields independent draws from the same
    distribution — e.g. a matching train/test pair.
    """
    if num_samples < num_classes:
        raise ConfigurationError(
            f"need at least one sample per class: {num_samples} < {num_classes}"
        )
    rng = as_generator(seed)
    centers = as_generator(center_seed).uniform(
        -center_box, center_box, size=(num_classes, num_features)
    )
    labels = rng.integers(0, num_classes, size=num_samples)
    inputs = centers[labels] + rng.normal(0.0, spread, size=(num_samples, num_features))
    return Dataset(inputs, labels, task="multiclass", num_classes=num_classes, name="blobs")


def make_linear_regression(
    num_samples: int,
    *,
    num_features: int = 10,
    noise: float = 0.1,
    seed: SeedLike = None,
) -> tuple[Dataset, np.ndarray]:
    """Linear data ``y = X w* + b* + ε``; returns (dataset, [w*, b*])."""
    rng = as_generator(seed)
    true_params = rng.normal(0.0, 1.0, size=num_features + 1)
    inputs = rng.normal(0.0, 1.0, size=(num_samples, num_features))
    targets = inputs @ true_params[:-1] + true_params[-1]
    if noise > 0:
        targets = targets + rng.normal(0.0, noise, size=num_samples)
    dataset = Dataset(inputs, targets, task="regression", name="linear")
    return dataset, true_params


def make_logistic_data(
    num_samples: int,
    *,
    num_features: int = 10,
    margin_scale: float = 2.0,
    seed: SeedLike = None,
) -> tuple[Dataset, np.ndarray]:
    """Binary labels from a ground-truth logistic model; returns (dataset, w*)."""
    rng = as_generator(seed)
    true_params = rng.normal(0.0, 1.0, size=num_features + 1)
    true_params *= margin_scale / max(np.linalg.norm(true_params), 1e-12)
    inputs = rng.normal(0.0, 1.0, size=(num_samples, num_features))
    logits = inputs @ true_params[:-1] + true_params[-1]
    probs = 1.0 / (1.0 + np.exp(-logits))
    labels = (rng.random(num_samples) < probs).astype(np.int64)
    dataset = Dataset(inputs, labels, task="binary", num_classes=2, name="logistic")
    return dataset, true_params
