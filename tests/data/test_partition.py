"""Tests for dataset partitioners."""

import numpy as np
import pytest

from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    label_shard_partition,
)
from repro.exceptions import ConfigurationError


def _assert_disjoint_cover(partitions, n):
    combined = np.concatenate(partitions)
    assert len(combined) == n
    assert len(np.unique(combined)) == n


class TestIidPartition:
    def test_disjoint_cover(self):
        parts = iid_partition(103, 7, seed=0)
        _assert_disjoint_cover(parts, 103)
        assert len(parts) == 7

    def test_near_equal_sizes(self):
        parts = iid_partition(100, 6, seed=1)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_reproducible(self):
        a = iid_partition(50, 5, seed=2)
        b = iid_partition(50, 5, seed=2)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_label_distribution_approximately_uniform(self, rng):
        labels = rng.integers(0, 4, size=4000)
        parts = iid_partition(4000, 4, seed=3)
        for part in parts:
            counts = np.bincount(labels[part], minlength=4) / len(part)
            np.testing.assert_allclose(counts, 0.25, atol=0.05)

    def test_rejects_more_workers_than_samples(self):
        with pytest.raises(ConfigurationError):
            iid_partition(3, 5)


class TestLabelShardPartition:
    def test_disjoint_cover(self, rng):
        labels = rng.integers(0, 10, size=200)
        parts = label_shard_partition(labels, 10, shards_per_worker=2, seed=0)
        _assert_disjoint_cover(parts, 200)

    def test_skew_is_severe(self, rng):
        labels = np.sort(rng.integers(0, 10, size=1000))
        parts = label_shard_partition(labels, 10, shards_per_worker=2, seed=1)
        # Each worker should see only a few distinct labels.
        distinct = [len(np.unique(labels[p])) for p in parts]
        assert np.mean(distinct) < 5

    def test_rejects_too_many_shards(self):
        with pytest.raises(ConfigurationError):
            label_shard_partition(np.zeros(5), 3, shards_per_worker=2)


class TestDirichletPartition:
    def test_disjoint_cover(self, rng):
        labels = rng.integers(0, 5, size=500)
        parts = dirichlet_partition(labels, 8, alpha=0.5, seed=0)
        _assert_disjoint_cover(parts, 500)

    def test_min_per_worker_enforced(self, rng):
        labels = rng.integers(0, 5, size=500)
        parts = dirichlet_partition(
            labels, 8, alpha=0.3, min_per_worker=10, seed=1
        )
        assert all(len(p) >= 10 for p in parts)

    def test_small_alpha_more_skewed_than_large(self, rng):
        labels = rng.integers(0, 5, size=5000)

        def label_entropy(parts):
            entropies = []
            for part in parts:
                dist = np.bincount(labels[part], minlength=5) / len(part)
                dist = dist[dist > 0]
                entropies.append(-(dist * np.log(dist)).sum())
            return np.mean(entropies)

        skewed = dirichlet_partition(labels, 10, alpha=0.05, seed=2)
        uniform = dirichlet_partition(labels, 10, alpha=100.0, seed=2)
        assert label_entropy(skewed) < label_entropy(uniform)

    def test_rejects_bad_alpha(self, rng):
        with pytest.raises(ConfigurationError):
            dirichlet_partition(np.zeros(10), 2, alpha=0.0)

    def test_impossible_min_raises(self, rng):
        labels = rng.integers(0, 2, size=10)
        with pytest.raises(ConfigurationError):
            dirichlet_partition(labels, 5, alpha=0.5, min_per_worker=10)
