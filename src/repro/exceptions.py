"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from numerical problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ByzantineToleranceError",
    "DimensionMismatchError",
    "InvalidVectorError",
    "ConvergenceError",
    "SimulationError",
    "LifecycleError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or combination of parameters was supplied."""


class ByzantineToleranceError(ConfigurationError):
    """The (n, f) pair violates a tolerance precondition.

    Krum requires ``2f + 2 < n`` (Proposition 4.2 of the paper); the
    brute-force minimal-diameter rule requires ``f < n``; Multi-Krum
    additionally requires ``m <= n - f - 2``.  This error reports which
    precondition failed and with which values.
    """

    def __init__(self, message: str, *, n: int | None = None, f: int | None = None):
        super().__init__(message)
        self.n = n
        self.f = f


class DimensionMismatchError(ReproError, ValueError):
    """Input arrays do not have the shapes the operation requires."""


class InvalidVectorError(ReproError, ValueError):
    """A vector contains NaN/Inf where finite values are required."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical routine failed to converge.

    Raised e.g. by the Weiszfeld geometric-median solver when it exceeds
    its iteration budget without meeting its tolerance.
    """


class SimulationError(ReproError, RuntimeError):
    """The distributed-training simulation reached an invalid state."""


class LifecycleError(ReproError, RuntimeError):
    """An object was used out of protocol order.

    Raised e.g. by the neural-network layers when ``backward`` is called
    without a preceding ``forward`` (the one-backward-per-forward
    contract).
    """
