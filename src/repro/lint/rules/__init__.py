"""Built-in lint rules: importing this package registers them.

Each rule module registers itself with
:mod:`repro.lint.registry` at import time, mirroring how the
aggregator/attack/workload/backend/delay registries self-register their
built-ins.  Module-local rules check one file at a time; the
project-scoped rules (registry-drift, seeded-query-purity,
rng-stream-order, loop-batched-pairing) run once per lint run against
the whole-program :class:`~repro.lint.project.ProjectContext`.
"""

from __future__ import annotations

from repro.lint.registry import register_rule
from repro.lint.rules.backend_purity import BackendPurityRule
from repro.lint.rules.error_taxonomy import ErrorTaxonomyRule
from repro.lint.rules.loop_batched_pairing import LoopBatchedPairingRule
from repro.lint.rules.registry_contract import RegistryFactoryContractRule
from repro.lint.rules.registry_drift import RegistryDriftRule
from repro.lint.rules.rng_discipline import RngDisciplineRule
from repro.lint.rules.rng_stream_order import RngStreamOrderRule
from repro.lint.rules.seeded_query_purity import SeededQueryPurityRule
from repro.lint.rules.stateful_attack import StatefulAttackRule

__all__ = [
    "BackendPurityRule",
    "RngDisciplineRule",
    "ErrorTaxonomyRule",
    "StatefulAttackRule",
    "RegistryFactoryContractRule",
    "RegistryDriftRule",
    "SeededQueryPurityRule",
    "RngStreamOrderRule",
    "LoopBatchedPairingRule",
]

register_rule(BackendPurityRule.name, BackendPurityRule)
register_rule(RngDisciplineRule.name, RngDisciplineRule)
register_rule(ErrorTaxonomyRule.name, ErrorTaxonomyRule)
register_rule(StatefulAttackRule.name, StatefulAttackRule)
register_rule(RegistryFactoryContractRule.name, RegistryFactoryContractRule)
register_rule(RegistryDriftRule.name, RegistryDriftRule)
register_rule(SeededQueryPurityRule.name, SeededQueryPurityRule)
register_rule(RngStreamOrderRule.name, RngStreamOrderRule)
register_rule(LoopBatchedPairingRule.name, LoopBatchedPairingRule)
