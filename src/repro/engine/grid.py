"""Declarative scenario grids — the cartesian experiment spec.

The paper's figures are grids: seeds × workloads × attacks ×
aggregators × f.  :class:`ScenarioGrid` declares such a grid once;
:meth:`ScenarioGrid.scenarios` expands it into concrete
:class:`ScenarioSpec` cells that the engine materializes and runs —
either one-by-one through :class:`~repro.distributed.TrainingSimulation`
(the loop executor) or stacked into ``(B, n, d)`` tensors by
:class:`~repro.engine.simulation.BatchedSimulation`.

Workload, aggregator and attack specs are all registry names plus
kwargs.  The workload axis defaults to the paper's analytic setting
(``"quadratic"``); dataset-backed workloads from
:mod:`repro.engine.workloads` slot in the same way, and a grid may sweep
several workloads at once via ``workloads=...``.  ``f`` is injected into
any rule whose factory accepts an ``f`` parameter (Krum, trimmed mean,
...), while f-free rules (averaging, coordinate median) ride through
unchanged.  Cells with ``f = 0`` are attack-free by definition, so the
grid collapses the attack axis there to a single ``attack=None`` cell
instead of emitting one duplicate per attack.

Backwards compatibility: the pre-workload API spelled the quadratic
knobs as scalar grid/spec fields (``dimension``, ``sigma``,
``curvature``).  Those fields survive as a deprecation shim — when
given, they are folded into the quadratic workload's kwargs, so old
call sites construct the equivalent grid unchanged.
"""

from __future__ import annotations

import inspect
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from itertools import product

from repro.core.registry import aggregator_factory, make_aggregator
from repro.distributed.delays import make_delay_schedule
from repro.engine.workloads import (
    QUADRATIC_DEFAULTS,
    make_workload,
    workload_key,
)
from repro.exceptions import ConfigurationError
from repro.servers.registry import make_server_attack
from repro.topology.registry import make_topology, topology_factory

__all__ = ["ScenarioSpec", "ScenarioGrid"]

# The deprecated scalar knobs and the quadratic workload kwargs they
# map onto (the shim below).
_QUADRATIC_SHIM_FIELDS = ("dimension", "sigma", "curvature")

# Spec/grid fields forwarded as topology factory kwargs when non-None.
_TOPOLOGY_KNOBS = ("degree", "edge_prob", "rewire_period")


def _resolve_quadratic_shim(
    owner: str,
    workload: str,
    workload_kwargs: Mapping,
    scalars: Mapping[str, object],
) -> dict:
    """Fold deprecated scalar quadratic knobs into workload kwargs.

    Returns the resolved kwargs dict (with quadratic defaults filled in
    so equal configurations compare equal however they were spelled).
    Raises when a scalar knob is combined with a non-quadratic workload
    or contradicts an explicit workload kwarg.
    """
    given = {k: v for k, v in scalars.items() if v is not None}
    if workload != "quadratic":
        if given:
            raise ConfigurationError(
                f"{owner} fields {sorted(given)} are quadratic-workload "
                f"knobs; move them into workload_kwargs of workload "
                f"{workload!r} (or drop them)"
            )
        return dict(workload_kwargs)
    resolved = dict(workload_kwargs)
    for key, value in given.items():
        if key in resolved and resolved[key] != value:
            raise ConfigurationError(
                f"{owner} got {key}={value!r} and "
                f"workload_kwargs[{key!r}]={resolved[key]!r}; pick one"
            )
        resolved[key] = value
    for key, default in QUADRATIC_DEFAULTS.items():
        resolved.setdefault(key, default)
    return resolved


def _encode_kwargs(name: str, kwargs: Mapping) -> str:
    """Collision-safe ``name(k=v, ...)`` encoding for cell labels.

    Values are rendered with ``repr`` so strings containing the label's
    structural characters (``,``, ``=``, ``|``) stay quoted and two
    distinct kwargs dicts can never produce the same encoding — e.g.
    ``{"a": "1,b=2"}`` renders as ``a='1,b=2'``, distinguishable from
    ``{"a": 1, "b": 2}`` → ``a=1,b=2``.
    """
    if not kwargs:
        return name
    inner = ",".join(f"{k}={v!r}" for k, v in sorted(kwargs.items()))
    return f"{name}({inner})"


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-resolved cell of a scenario grid.

    Carries everything needed to build the cell's simulation: the
    workload (registry name + kwargs), the cast (n workers, f Byzantine,
    slot placement), the learning-rate schedule knobs, and the registry
    names + kwargs of the choice function and the attack.  ``attack`` is
    ``None`` for attack-free (f = 0) cells.

    The ``dimension``/``sigma``/``curvature`` fields are a deprecation
    shim for the pre-workload API: when given they configure the
    ``quadratic`` workload, and for quadratic cells they read back as
    the resolved knob values.
    """

    seed: int
    aggregator: str
    aggregator_kwargs: dict = field(default_factory=dict)
    attack: str | None = None
    attack_kwargs: dict = field(default_factory=dict)
    num_workers: int = 20
    num_byzantine: int = 0
    workload: str = "quadratic"
    workload_kwargs: dict = field(default_factory=dict)
    dimension: int | None = None
    sigma: float | None = None
    curvature: float | None = None
    learning_rate: float = 0.1
    lr_timescale: float | None = 100.0
    byzantine_slots: str = "last"
    max_staleness: int = 0
    delay_schedule: str | None = None
    delay_kwargs: dict = field(default_factory=dict)
    num_servers: int = 1
    byzantine_servers: int = 0
    num_shards: int = 1
    server_attack: str | None = None
    server_attack_kwargs: dict = field(default_factory=dict)
    halt_on_nonfinite: bool = False
    topology: str = "complete"
    degree: int | None = None
    edge_prob: float | None = None
    rewire_period: int | None = None

    def __post_init__(self) -> None:
        resolved = _resolve_quadratic_shim(
            "ScenarioSpec",
            self.workload,
            self.workload_kwargs,
            {name: getattr(self, name) for name in _QUADRATIC_SHIM_FIELDS},
        )
        object.__setattr__(self, "workload_kwargs", resolved)
        if self.workload == "quadratic":
            for name in _QUADRATIC_SHIM_FIELDS:
                object.__setattr__(self, name, resolved[name])
        if self.max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0, got {self.max_staleness}"
            )
        # Validates the (name, kwargs) pair at declaration time; also
        # rejects delay kwargs without a schedule name.
        make_delay_schedule(self.delay_schedule, self.delay_kwargs)
        # Server-tier knobs: same pairing discipline as the worker-side
        # num_byzantine/attack pair, validated at declaration time.
        if self.num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {self.num_servers}"
            )
        if not 0 <= self.byzantine_servers <= self.num_servers:
            raise ConfigurationError(
                f"need 0 <= byzantine_servers <= num_servers, got "
                f"byzantine_servers={self.byzantine_servers} with "
                f"num_servers={self.num_servers}"
            )
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.byzantine_servers > 0 and self.server_attack is None:
            raise ConfigurationError(
                f"byzantine_servers={self.byzantine_servers} requires a "
                f"server_attack"
            )
        if self.byzantine_servers == 0 and self.server_attack is not None:
            raise ConfigurationError(
                "a server_attack was supplied but byzantine_servers=0"
            )
        # Validates the (name, kwargs) pair at declaration time; also
        # rejects server-attack kwargs without an attack name.
        make_server_attack(self.server_attack, self.server_attack_kwargs)
        # Topology: unknown names and knobs the named graph family does
        # not take both fail here, at declaration time.
        factory = topology_factory(self.topology)
        for knob in _TOPOLOGY_KNOBS:
            if getattr(self, knob) is not None and not _accepts(
                factory, knob
            ):
                raise ConfigurationError(
                    f"topology {self.topology!r} does not take a "
                    f"{knob} parameter"
                )
        make_topology(self.topology, self.topology_kwargs)
        if self.is_gossip:
            if self.max_staleness != 0:
                raise ConfigurationError(
                    "gossip cells model lag per edge via delay_schedule; "
                    f"max_staleness={self.max_staleness} is a server-side "
                    f"knob and must stay 0"
                )
            if (
                self.num_servers != 1
                or self.byzantine_servers != 0
                or self.num_shards != 1
                or self.server_attack is not None
            ):
                raise ConfigurationError(
                    "the replicated/sharded server tier and gossip "
                    "topologies are mutually exclusive — a decentralized "
                    "cell has no server to replicate"
                )

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would raise on the kwargs
        # dicts; hash the label (which encodes workload, attack, rule
        # and delay kwargs) plus the remaining scalars instead.  Equal
        # specs have equal labels, so the eq/hash contract holds — treat
        # the kwargs dicts as read-only.
        return hash(
            (self.label, self.learning_rate, self.lr_timescale,
             self.byzantine_slots, self.halt_on_nonfinite)
        )

    @property
    def workload_label(self) -> str:
        """The label segment identifying this cell's workload.

        Quadratic kwargs equal to their defaults are omitted so the
        default workload reads as plain ``quadratic`` (omission is
        value-determined per key, so the encoding stays collision-safe).
        """
        kwargs = self.workload_kwargs
        if self.workload == "quadratic":
            kwargs = {
                k: v
                for k, v in kwargs.items()
                if QUADRATIC_DEFAULTS.get(k, object()) != v
            }
        return _encode_kwargs(self.workload, kwargs)

    @property
    def async_label(self) -> str | None:
        """The label segment identifying this cell's asynchrony, or
        ``None`` for the (default) synchronous cell — so synchronous
        labels are exactly what they were before the async axes existed.
        """
        if self.max_staleness == 0 and self.delay_schedule is None:
            return None
        delay = (
            _encode_kwargs(self.delay_schedule, self.delay_kwargs)
            if self.delay_schedule is not None
            else "no-delay"
        )
        return f"stale<={self.max_staleness}|{delay}"

    @property
    def server_label(self) -> str | None:
        """The label segment identifying this cell's server tier, or
        ``None`` for the (default) single reliable server — so
        pre-tier labels are exactly what they were before the server
        axes existed.
        """
        if (
            self.num_servers == 1
            and self.byzantine_servers == 0
            and self.num_shards == 1
        ):
            return None
        attack = (
            _encode_kwargs(self.server_attack, self.server_attack_kwargs)
            if self.server_attack is not None
            else "no-server-attack"
        )
        return (
            f"servers={self.num_servers}/byz={self.byzantine_servers}"
            f"/shards={self.num_shards}|{attack}"
        )

    @property
    def is_gossip(self) -> bool:
        """Whether this cell runs the serverless gossip engine.

        The ``"complete"`` default routes through the server path — on
        the complete graph with fresh edges the two engines produce the
        same trajectory bit for bit, so the server path *is* the
        degenerate cell and pre-topology grids are untouched.
        """
        return self.topology != "complete"

    @property
    def topology_kwargs(self) -> dict:
        """The non-None topology knobs as factory kwargs."""
        return {
            knob: getattr(self, knob)
            for knob in _TOPOLOGY_KNOBS
            if getattr(self, knob) is not None
        }

    @property
    def topology_label(self) -> str | None:
        """The label segment identifying this cell's communication
        graph, or ``None`` for the (default) complete graph — so
        pre-topology labels are exactly what they were before the
        topology axes existed."""
        if not self.is_gossip:
            return None
        return "topo=" + _encode_kwargs(self.topology, self.topology_kwargs)

    @property
    def label(self) -> str:
        """Unique human-readable cell identifier used in result dicts.

        Encodes the workload, the kwargs of the rule and the attack,
        for asynchronous cells the staleness bound and delay schedule,
        for server-tier cells the replica/shard topology and server
        attack, and for gossip cells the communication graph
        (collision-safely — see :func:`_encode_kwargs`) so grids can
        sweep workload, rule, attack, delay, server *and* topology
        parameters without label collisions.
        """
        agg = _encode_kwargs(self.aggregator, self.aggregator_kwargs)
        attack = (
            _encode_kwargs(self.attack, self.attack_kwargs)
            if self.attack is not None
            else "no-attack"
        )
        base = (
            f"seed={self.seed}|{self.workload_label}|{attack}|{agg}"
            f"|f={self.num_byzantine}"
        )
        for suffix in (
            self.async_label,
            self.server_label,
            self.topology_label,
        ):
            if suffix is not None:
                base = f"{base}|{suffix}"
        return base


def _accepts(factory: object, param: str) -> bool:
    """Whether a registry factory takes keyword ``param``."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable sigs
        return False
    return param in signature.parameters


def _accepts_f(factory: object) -> bool:
    """Whether a registry factory takes an ``f`` keyword (Krum does,
    plain averaging does not)."""
    return _accepts(factory, "f")


@dataclass(frozen=True)
class ScenarioGrid:
    """Cartesian product of seeds × workloads × attacks × aggregators × f.

    ``aggregators``, ``attacks`` and ``workloads`` are sequences of
    ``(registry_name, kwargs)`` pairs; ``f_values`` the Byzantine counts
    to sweep.  The workload axis defaults to one entry — the singular
    ``workload``/``workload_kwargs`` pair, which itself defaults to the
    paper's analytic quadratic setting.  Mixed-dimension grids are fine:
    the batched executor groups cells by parameter dimension.

    Asynchrony is two more axes: ``max_staleness_values`` sweeps the
    server's bounded-staleness window and ``delay_schedules`` the
    per-worker delay model (``(registry_name, kwargs)`` pairs from
    :mod:`repro.distributed.delays`; an entry of ``(None, {})`` is the
    synchronous arm).  Both default to one entry — the singular
    ``max_staleness``/``delay_schedule``+``delay_kwargs`` knobs, which
    themselves default to the synchronous model, keeping pre-async grids
    (and their cell labels) unchanged.

    The server tier adds four more, resolved the same way:
    ``num_servers_values`` (replica counts), ``byzantine_servers_values``
    (corrupted-replica counts; every combination must satisfy
    ``byzantine_servers <= num_servers``, checked at declaration),
    ``num_shards_values`` (per-shard aggregation) and ``server_attacks``
    (``(registry_name, kwargs)`` pairs from
    :mod:`repro.servers.registry`).  ``byzantine_servers = 0`` collapses
    the server-attack axis to one attack-free entry, exactly as ``f = 0``
    collapses the worker-attack axis, and the all-default singular knobs
    keep pre-tier grids (and their cell labels) unchanged.

    Decentralized cells add ``topology(_values)`` plus the graph knobs
    ``degree(_values)`` / ``edge_prob`` / ``rewire_period`` from the
    topology registry.  The ``"complete"`` default runs on the server
    path (bit-identical to the gossip engine's complete-graph cell —
    the degenerate-identity guarantee), non-complete topologies run the
    event-driven :class:`~repro.topology.GossipSimulation`, and the
    degree axis expands only under graph families that take a degree,
    collapsing elsewhere so no duplicate labels arise.

    Example::

        grid = ScenarioGrid(
            seeds=(0, 1), num_rounds=50, num_workers=15,
            workloads=(
                ("quadratic", {"dimension": 100}),
                ("logistic-spambase", {"num_train": 256}),
            ),
            attacks=(("gaussian", {"sigma": 200.0}),),
            aggregators=(("krum", {}), ("average", {})),
            f_values=(0, 3),
        )
        grid.scenarios()   # the resolved ScenarioSpec cells
    """

    seeds: Sequence[int] = (0,)
    attacks: Sequence[tuple[str, Mapping]] = ()
    aggregators: Sequence[tuple[str, Mapping]] = (("krum", {}),)
    f_values: Sequence[int] = (0,)
    num_workers: int = 20
    num_rounds: int = 50
    workload: str = "quadratic"
    workload_kwargs: Mapping = field(default_factory=dict)
    workloads: Sequence[tuple[str, Mapping]] | None = None
    dimension: int | None = None
    sigma: float | None = None
    curvature: float | None = None
    learning_rate: float = 0.1
    lr_timescale: float | None = 100.0
    byzantine_slots: str = "last"
    max_staleness: int = 0
    max_staleness_values: Sequence[int] | None = None
    delay_schedule: str | None = None
    delay_kwargs: Mapping = field(default_factory=dict)
    delay_schedules: Sequence[tuple[str | None, Mapping]] | None = None
    num_servers: int = 1
    num_servers_values: Sequence[int] | None = None
    byzantine_servers: int = 0
    byzantine_servers_values: Sequence[int] | None = None
    num_shards: int = 1
    num_shards_values: Sequence[int] | None = None
    server_attack: str | None = None
    server_attack_kwargs: Mapping = field(default_factory=dict)
    server_attacks: Sequence[tuple[str, Mapping]] | None = None
    halt_on_nonfinite: bool = False
    topology: str = "complete"
    topology_values: Sequence[str] | None = None
    degree: int | None = None
    degree_values: Sequence[int] | None = None
    edge_prob: float | None = None
    rewire_period: int | None = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("grid needs at least one seed")
        if not self.aggregators:
            raise ConfigurationError("grid needs at least one aggregator spec")
        if not self.f_values:
            raise ConfigurationError("grid needs at least one f value")
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.num_rounds < 1:
            raise ConfigurationError(
                f"num_rounds must be >= 1, got {self.num_rounds}"
            )
        for f in self.f_values:
            if not 0 <= f < self.num_workers:
                raise ConfigurationError(
                    f"need 0 <= f < n for every f value, got f={f}, "
                    f"n={self.num_workers}"
                )
        if any(f > 0 for f in self.f_values) and not self.attacks:
            raise ConfigurationError(
                "grid sweeps f > 0 but declares no attacks"
            )
        # Resolve the workload axis once.  The deprecated scalar knobs
        # apply to the singular quadratic pair only; combining them (or
        # the singular pair) with an explicit `workloads` axis would be
        # ambiguous.
        if self.workloads is not None:
            if self.workload != "quadratic" or self.workload_kwargs:
                raise ConfigurationError(
                    "pass either workload/workload_kwargs or a workloads "
                    "axis, not both"
                )
            if any(
                getattr(self, name) is not None
                for name in _QUADRATIC_SHIM_FIELDS
            ):
                raise ConfigurationError(
                    "deprecated quadratic knobs (dimension/sigma/curvature) "
                    "cannot be combined with a workloads axis; put them in "
                    "the quadratic entry's kwargs"
                )
            if not self.workloads:
                raise ConfigurationError(
                    "grid needs at least one workload spec"
                )
            axis = tuple(
                (name, dict(kwargs)) for name, kwargs in self.workloads
            )
        else:
            resolved = _resolve_quadratic_shim(
                "ScenarioGrid",
                self.workload,
                self.workload_kwargs,
                {
                    name: getattr(self, name)
                    for name in _QUADRATIC_SHIM_FIELDS
                },
            )
            object.__setattr__(self, "workload_kwargs", resolved)
            if self.workload == "quadratic":
                for name in _QUADRATIC_SHIM_FIELDS:
                    object.__setattr__(self, name, resolved[name])
            axis = ((self.workload, dict(resolved)),)
        object.__setattr__(self, "workloads", axis)
        # Eagerly validate every workload spec (cheap — workloads
        # materialize datasets lazily), so a typo'd name or a bad knob
        # (e.g. dimension=0) fails at declaration time, as the
        # pre-workload scalar fields did.
        for name, kwargs in axis:
            make_workload(name, kwargs)
        # Resolve the asynchrony axes the same way the workload axis
        # resolves: plural sweeps exclude the singular knobs.
        if self.max_staleness_values is not None:
            if self.max_staleness != 0:
                raise ConfigurationError(
                    "pass either max_staleness or a max_staleness_values "
                    "axis, not both"
                )
            if not self.max_staleness_values:
                raise ConfigurationError(
                    "grid needs at least one max_staleness value"
                )
            staleness_axis = tuple(int(s) for s in self.max_staleness_values)
        else:
            staleness_axis = (int(self.max_staleness),)
        for bound in staleness_axis:
            if bound < 0:
                raise ConfigurationError(
                    f"max_staleness values must be >= 0, got {bound}"
                )
        object.__setattr__(self, "max_staleness_values", staleness_axis)
        if self.delay_schedules is not None:
            if self.delay_schedule is not None or self.delay_kwargs:
                raise ConfigurationError(
                    "pass either delay_schedule/delay_kwargs or a "
                    "delay_schedules axis, not both"
                )
            if not self.delay_schedules:
                raise ConfigurationError(
                    "grid needs at least one delay schedule spec"
                )
            delay_axis = tuple(
                (name, dict(kwargs)) for name, kwargs in self.delay_schedules
            )
        else:
            delay_axis = ((self.delay_schedule, dict(self.delay_kwargs)),)
        for name, kwargs in delay_axis:
            make_delay_schedule(name, kwargs)
        object.__setattr__(self, "delay_schedules", delay_axis)
        # Resolve the server-tier axes: plural sweeps exclude the
        # singular knobs, mirroring the asynchrony axes above.
        servers_axis = self._scalar_axis(
            "num_servers", default=1, minimum=1
        )
        byzantine_axis = self._scalar_axis(
            "byzantine_servers", default=0, minimum=0
        )
        shards_axis = self._scalar_axis("num_shards", default=1, minimum=1)
        # Every (num_servers, byzantine_servers) combination the product
        # will emit must be a valid cell, so the cheapest-to-satisfy
        # bound governs: checked eagerly to keep ``len(grid)`` exact.
        for b in byzantine_axis:
            if b > min(servers_axis):
                raise ConfigurationError(
                    f"byzantine_servers={b} exceeds num_servers="
                    f"{min(servers_axis)}; every swept combination must "
                    f"satisfy byzantine_servers <= num_servers"
                )
        if self.server_attacks is not None:
            if self.server_attack is not None or self.server_attack_kwargs:
                raise ConfigurationError(
                    "pass either server_attack/server_attack_kwargs or a "
                    "server_attacks axis, not both"
                )
            if not self.server_attacks:
                raise ConfigurationError(
                    "grid needs at least one server attack spec"
                )
            server_attack_axis = tuple(
                (name, dict(kwargs)) for name, kwargs in self.server_attacks
            )
        elif self.server_attack is not None:
            server_attack_axis = (
                (self.server_attack, dict(self.server_attack_kwargs)),
            )
        else:
            if self.server_attack_kwargs:
                raise ConfigurationError(
                    f"server-attack kwargs "
                    f"{dict(self.server_attack_kwargs)!r} were given "
                    f"without a server attack name"
                )
            server_attack_axis = ()
        for name, kwargs in server_attack_axis:
            make_server_attack(name, kwargs)
        if any(b > 0 for b in byzantine_axis) and not server_attack_axis:
            raise ConfigurationError(
                "grid sweeps byzantine_servers > 0 but declares no "
                "server attacks"
            )
        object.__setattr__(self, "num_servers_values", servers_axis)
        object.__setattr__(self, "byzantine_servers_values", byzantine_axis)
        object.__setattr__(self, "num_shards_values", shards_axis)
        object.__setattr__(self, "server_attacks", server_attack_axis)
        # Resolve the topology axes: plural sweeps exclude the singular
        # knobs, mirroring every axis above.
        if self.topology_values is not None:
            if self.topology != "complete":
                raise ConfigurationError(
                    "pass either topology or a topology_values axis, "
                    "not both"
                )
            if not self.topology_values:
                raise ConfigurationError(
                    "grid needs at least one topology name"
                )
            topology_axis = tuple(str(t) for t in self.topology_values)
        else:
            topology_axis = (str(self.topology),)
        object.__setattr__(self, "topology_values", topology_axis)
        if self.degree_values is not None:
            if self.degree is not None:
                raise ConfigurationError(
                    "pass either degree or a degree_values axis, not both"
                )
            if not self.degree_values:
                raise ConfigurationError(
                    "grid needs at least one degree value"
                )
            degree_axis: tuple[int | None, ...] = tuple(
                int(d) for d in self.degree_values
            )
        else:
            degree_axis = (
                None if self.degree is None else int(self.degree),
            )
        object.__setattr__(self, "degree_values", degree_axis)
        # Each supplied knob must land somewhere: a degree (edge_prob,
        # rewire_period) that no swept topology accepts is a typo, not a
        # silently dropped axis.
        for knob, supplied in (
            ("degree", any(d is not None for d in degree_axis)),
            ("edge_prob", self.edge_prob is not None),
            ("rewire_period", self.rewire_period is not None),
        ):
            if supplied and not any(
                _accepts(topology_factory(name), knob)
                for name in topology_axis
            ):
                raise ConfigurationError(
                    f"{knob} was given but no swept topology "
                    f"({list(topology_axis)}) takes a {knob} parameter"
                )
        # Eagerly validate every topology cell (builds the unbound
        # graph), and forbid combining gossip cells with the server-side
        # axes — the ScenarioSpec constraint, surfaced at grid
        # declaration so ``len(grid)`` stays exact.
        topology_cells = tuple(self._topology_cells())
        for name, kwargs in topology_cells:
            make_topology(name, kwargs)
        if any(name != "complete" for name, _ in topology_cells):
            if any(s != 0 for s in staleness_axis):
                raise ConfigurationError(
                    "gossip cells model lag per edge via the delay axis; "
                    "a max_staleness sweep is a server-side knob and "
                    "cannot be combined with non-complete topologies"
                )
            if (
                servers_axis != (1,)
                or byzantine_axis != (0,)
                or shards_axis != (1,)
                or server_attack_axis
            ):
                raise ConfigurationError(
                    "the replicated/sharded server tier and gossip "
                    "topologies are mutually exclusive — a decentralized "
                    "cell has no server to replicate"
                )

    def _scalar_axis(
        self, name: str, *, default: int, minimum: int
    ) -> tuple[int, ...]:
        """Resolve a singular-knob / plural-axis pair of integer fields
        (``name`` and ``name + "_values"``) into the swept tuple."""
        plural = f"{name}_values"
        values = getattr(self, plural)
        singular = getattr(self, name)
        if values is not None:
            if singular != default:
                raise ConfigurationError(
                    f"pass either {name} or a {plural} axis, not both"
                )
            if not values:
                raise ConfigurationError(
                    f"grid needs at least one {name} value"
                )
            axis = tuple(int(v) for v in values)
        else:
            axis = (int(singular),)
        for value in axis:
            if value < minimum:
                raise ConfigurationError(
                    f"{name} values must be >= {minimum}, got {value}"
                )
        return axis

    def _topology_cells(self) -> list[tuple[str, dict]]:
        """The resolved topology axis: one ``(name, kwargs)`` cell per
        swept graph.

        ``edge_prob``/``rewire_period`` are forwarded to the factories
        that take them; the degree axis expands only under topologies
        with a ``degree`` parameter (ring, k-regular) and collapses to
        one cell elsewhere, exactly as ``f = 0`` collapses the attack
        axis — no duplicate labels.  A ``None`` degree entry defers to
        the factory's default.
        """
        cells: list[tuple[str, dict]] = []
        for name in self.topology_values:
            factory = topology_factory(name)
            base: dict = {}
            for knob in ("edge_prob", "rewire_period"):
                value = getattr(self, knob)
                if value is not None and _accepts(factory, knob):
                    base[knob] = value
            if _accepts(factory, "degree"):
                for degree in self.degree_values:
                    kwargs = dict(base)
                    if degree is not None:
                        kwargs["degree"] = int(degree)
                    cells.append((name, kwargs))
            else:
                cells.append((name, base))
        return cells

    def _aggregator_kwargs(self, name: str, kwargs: Mapping, f: int) -> dict:
        """Resolve a rule's kwargs for a cell, injecting the cell's f
        where the rule's factory accepts it."""
        resolved = dict(kwargs)
        if "f" not in resolved and _accepts_f(aggregator_factory(name)):
            resolved["f"] = f
        return resolved

    def scenarios(self) -> list[ScenarioSpec]:
        """Expand the grid into its concrete cells.

        For ``f = 0`` the attack axis collapses (there is no Byzantine
        slot to feed), so each (seed, workload, aggregator) triple
        contributes one attack-free cell instead of one per attack.
        """
        cells: list[ScenarioSpec] = []
        attack_specs: Iterable[tuple[str, Mapping] | None]
        server_specs: Iterable[tuple[str, Mapping] | None]
        outer = product(
            self.seeds,
            self.workloads,
            self.max_staleness_values,
            self.delay_schedules,
            self.num_servers_values,
            self.byzantine_servers_values,
            self.num_shards_values,
            tuple(self._topology_cells()),
        )
        for seed, (workload_name, workload_kwargs), max_staleness, (
            delay_name,
            delay_kwargs,
        ), num_servers, byzantine_servers, num_shards, (
            topology_name,
            topology_kwargs,
        ) in outer:
            server_specs = (
                self.server_attacks if byzantine_servers > 0 else (None,)
            )
            for server_spec in server_specs:
                server_name = None
                server_kwargs: dict = {}
                if server_spec is not None:
                    server_name, raw = server_spec
                    server_kwargs = dict(raw)
                for f in self.f_values:
                    attack_specs = self.attacks if f > 0 else (None,)
                    for attack_spec in attack_specs:
                        for agg_name, agg_kwargs in self.aggregators:
                            attack_name = None
                            attack_kwargs: dict = {}
                            if attack_spec is not None:
                                attack_name, raw = attack_spec
                                attack_kwargs = dict(raw)
                            cells.append(
                                ScenarioSpec(
                                    seed=int(seed),
                                    aggregator=agg_name,
                                    aggregator_kwargs=self._aggregator_kwargs(
                                        agg_name, agg_kwargs, f
                                    ),
                                    attack=attack_name,
                                    attack_kwargs=attack_kwargs,
                                    num_workers=self.num_workers,
                                    num_byzantine=int(f),
                                    workload=workload_name,
                                    workload_kwargs=dict(workload_kwargs),
                                    learning_rate=self.learning_rate,
                                    lr_timescale=self.lr_timescale,
                                    byzantine_slots=self.byzantine_slots,
                                    max_staleness=int(max_staleness),
                                    delay_schedule=delay_name,
                                    delay_kwargs=dict(delay_kwargs),
                                    num_servers=int(num_servers),
                                    byzantine_servers=int(byzantine_servers),
                                    num_shards=int(num_shards),
                                    server_attack=server_name,
                                    server_attack_kwargs=server_kwargs,
                                    halt_on_nonfinite=self.halt_on_nonfinite,
                                    topology=topology_name,
                                    degree=topology_kwargs.get("degree"),
                                    edge_prob=topology_kwargs.get(
                                        "edge_prob"
                                    ),
                                    rewire_period=topology_kwargs.get(
                                        "rewire_period"
                                    ),
                                )
                            )
        return cells

    def __len__(self) -> int:
        f_zero = sum(1 for f in self.f_values if f == 0)
        f_pos = len(self.f_values) - f_zero
        per_workload = len(self.aggregators) * (
            f_zero + f_pos * len(self.attacks)
        )
        b_zero = sum(1 for b in self.byzantine_servers_values if b == 0)
        b_pos = len(self.byzantine_servers_values) - b_zero
        server_cells = (
            len(self.num_servers_values)
            * len(self.num_shards_values)
            * (b_zero + b_pos * len(self.server_attacks))
        )
        return (
            len(self.seeds)
            * len(self.workloads)
            * len(self.max_staleness_values)
            * len(self.delay_schedules)
            * server_cells
            * len(self._topology_cells())
            * per_workload
        )

    def validate(self) -> None:
        """Eagerly resolve every registry reference the grid names,
        surfacing bad workload/aggregator names, bad kwargs or (n, f)
        precondition violations before a long run.

        Deduplicated: each distinct workload spec and each distinct
        ``(rule, kwargs, n)`` combination is built exactly once, so
        validating a large grid costs O(distinct specs), not O(cells).
        """
        for name, kwargs in self.workloads:
            make_workload(name, kwargs)
        for name, kwargs in self.delay_schedules:
            make_delay_schedule(name, kwargs)
        for name, kwargs in self.server_attacks:
            make_server_attack(name, kwargs)
        for name, kwargs in self._topology_cells():
            make_topology(name, kwargs)
        checked: set[tuple] = set()
        for spec in self.scenarios():
            key = (
                spec.aggregator,
                tuple(sorted(
                    (k, repr(v)) for k, v in spec.aggregator_kwargs.items()
                )),
                spec.num_workers,
            )
            if key in checked:
                continue
            checked.add(key)
            rule = make_aggregator(spec.aggregator, **spec.aggregator_kwargs)
            rule.check_tolerance(spec.num_workers)

    def workload_specs(self) -> tuple[tuple[str, dict], ...]:
        """The resolved workload axis: ``(name, kwargs)`` per entry."""
        return tuple((name, dict(kwargs)) for name, kwargs in self.workloads)

    def distinct_workloads(self) -> list[tuple[str, dict]]:
        """The workload axis with duplicate specs removed (keyed by
        :func:`~repro.engine.workloads.workload_key`)."""
        seen: set[tuple] = set()
        out: list[tuple[str, dict]] = []
        for name, kwargs in self.workloads:
            key = workload_key(name, kwargs)
            if key not in seen:
                seen.add(key)
                out.append((name, dict(kwargs)))
        return out
