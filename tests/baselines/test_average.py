"""Tests for linear choice functions, including the Lemma 3.1 weakness."""

import numpy as np
import pytest

from repro.baselines.average import Average, WeightedAverage
from repro.exceptions import ConfigurationError, DimensionMismatchError


class TestAverage:
    def test_mean(self, rng):
        vectors = rng.standard_normal((6, 4))
        np.testing.assert_allclose(Average().aggregate(vectors), vectors.mean(axis=0))

    def test_single_vector(self):
        vectors = np.array([[1.0, 2.0]])
        np.testing.assert_array_equal(Average().aggregate(vectors), [1.0, 2.0])

    def test_lemma31_single_byzantine_controls_output(self, rng):
        """Lemma 3.1: one Byzantine worker forces the average to any U."""
        target = rng.standard_normal(5)
        honest = rng.standard_normal((9, 5))
        n = 10
        byzantine = n * target - honest.sum(axis=0)
        stack = np.vstack([honest, byzantine[None, :]])
        np.testing.assert_allclose(Average().aggregate(stack), target, atol=1e-9)


class TestWeightedAverage:
    def test_uniform_weights_match_average(self, rng):
        vectors = rng.standard_normal((5, 3))
        rule = WeightedAverage(np.ones(5))
        np.testing.assert_allclose(
            rule.aggregate(vectors), vectors.mean(axis=0), atol=1e-12
        )

    def test_weights_applied(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        rule = WeightedAverage(np.array([3.0, 1.0]))
        np.testing.assert_allclose(rule.aggregate(vectors), [0.75, 0.25])

    def test_unnormalized_weights(self):
        vectors = np.array([[1.0], [1.0]])
        rule = WeightedAverage(np.array([2.0, 2.0]), normalize=False)
        np.testing.assert_allclose(rule.aggregate(vectors), [4.0])

    def test_rejects_zero_weight(self):
        with pytest.raises(ConfigurationError, match="non-zero"):
            WeightedAverage(np.array([1.0, 0.0]))

    def test_rejects_zero_sum_normalization(self):
        with pytest.raises(ConfigurationError):
            WeightedAverage(np.array([1.0, -1.0]))

    def test_rejects_worker_count_mismatch(self, rng):
        rule = WeightedAverage(np.ones(4))
        with pytest.raises(DimensionMismatchError):
            rule.aggregate(rng.standard_normal((5, 2)))

    def test_lemma31_holds_for_any_nonzero_weights(self, rng):
        """The hijack works for arbitrary non-zero coefficient vectors."""
        weights = rng.uniform(0.5, 2.0, size=7)
        weights[3] = -1.2  # negative coefficients too
        rule = WeightedAverage(weights, normalize=False)
        target = rng.standard_normal(4)
        honest = rng.standard_normal((6, 4))
        # Byzantine worker sits in slot 6.
        contribution = weights[:6] @ honest
        byzantine = (target - contribution) / weights[6]
        stack = np.vstack([honest, byzantine[None, :]])
        np.testing.assert_allclose(rule.aggregate(stack), target, atol=1e-9)
