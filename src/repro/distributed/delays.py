"""Deterministic worker-delay schedules for asynchronous rounds.

The paper's model is fully synchronous: every worker's round-t proposal
is computed at ``x_t``.  Real deployments (Garfield, Kardam) serve
heterogeneous workers whose gradients arrive *stale* — a worker's
round-t proposal is the gradient it computed at ``x_{t−τ}``.  A
:class:`DelaySchedule` is the reproducible model of that heterogeneity:
a pure function ``staleness(worker_id, round_index) -> τ ≥ 0`` giving
each worker's desired lag at each round.

The *effective* staleness a simulation applies is
``min(τ, round_index, max_staleness)`` — a worker cannot see parameters
from before round 0, and the bounded-staleness protocol (the server's
``max_staleness`` window, stale-synchronous-parallel style) blocks a
worker from lagging further than the bound.  ``max_staleness = 0``
therefore degenerates to the synchronous loop *bit for bit*, whatever
schedule is configured.

Randomized schedules are seeded from the simulation: the simulator calls
:meth:`DelaySchedule.bind` with a dedicated RNG stream spawned from the
root seed, so the full delay pattern is reproducible from one integer
and identical across the loop and batched executors.

The registry mirrors the aggregator/attack/workload/backend registries —
``register_delay_schedule`` / ``available_delay_schedules`` /
``make_delay_schedule`` — with the same :class:`ConfigurationError`
contract (unknown names list the alternatives; bad kwargs name the
schedule and the parameters it accepts).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_factory_kwargs

__all__ = [
    "DelaySchedule",
    "ZeroDelay",
    "ConstantDelay",
    "PeriodicDelay",
    "SeededRandomDelay",
    "register_delay_schedule",
    "available_delay_schedules",
    "delay_schedule_factory",
    "make_delay_schedule",
]


class DelaySchedule(ABC):
    """Per-worker, per-round desired staleness ``τ``.

    Implementations must be *pure*: ``staleness(i, t)`` may depend only
    on the arguments and on state fixed at :meth:`bind` time, so the
    loop and batched executors (which query in different orders) see the
    same delays.
    """

    #: Registry name; subclasses set this as a class attribute.
    name: str = "delay"

    @abstractmethod
    def staleness(self, worker_id: int, round_index: int) -> int:
        """Desired lag of ``worker_id``'s round-``round_index`` proposal."""

    def bind(self, rng: np.random.Generator) -> "DelaySchedule":
        """Fix any randomness from a simulation-derived stream.

        Deterministic schedules return themselves; randomized ones
        return a bound copy whose ``staleness`` is a pure function.
        The simulator calls this once at construction time with a
        stream spawned from the root seed.
        """
        return self

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ZeroDelay(DelaySchedule):
    """Every worker is always fresh — the synchronous degenerate case."""

    name = "none"

    def staleness(self, worker_id: int, round_index: int) -> int:
        return 0


class ConstantDelay(DelaySchedule):
    """A fixed lag ``tau``, for every worker or a chosen subset.

    ``workers=None`` delays the whole cluster uniformly; an explicit id
    sequence models a straggler subset (only those workers lag, the rest
    stay fresh).
    """

    name = "constant"

    def __init__(self, tau: int = 1, workers: Sequence[int] | None = None):
        if int(tau) < 0:
            raise ConfigurationError(f"tau must be >= 0, got {tau}")
        self.tau = int(tau)
        if workers is None:
            self._workers: frozenset[int] | None = None
        else:
            ids = [int(w) for w in workers]
            if any(w < 0 for w in ids):
                raise ConfigurationError(
                    f"worker ids must be >= 0, got {sorted(ids)}"
                )
            self._workers = frozenset(ids)

    def staleness(self, worker_id: int, round_index: int) -> int:
        if self._workers is None or worker_id in self._workers:
            return self.tau
        return 0


class PeriodicDelay(DelaySchedule):
    """Workers lag ``tau`` on a periodic round pattern.

    Worker ``i`` is stale on rounds where ``(t + i·stagger) % period``
    is zero — with the default ``stagger=1`` the lag sweeps through the
    cluster one worker per round (a rotating straggler), while
    ``stagger=0`` makes the whole cluster hiccup together every
    ``period`` rounds.
    """

    name = "periodic"

    def __init__(self, tau: int = 1, period: int = 4, stagger: int = 1):
        if int(tau) < 0:
            raise ConfigurationError(f"tau must be >= 0, got {tau}")
        if int(period) < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if int(stagger) < 0:
            raise ConfigurationError(f"stagger must be >= 0, got {stagger}")
        self.tau = int(tau)
        self.period = int(period)
        self.stagger = int(stagger)

    def staleness(self, worker_id: int, round_index: int) -> int:
        if (round_index + worker_id * self.stagger) % self.period == 0:
            return self.tau
        return 0


class SeededRandomDelay(DelaySchedule):
    """Independent random lags, reproducible from the simulation seed.

    Each ``(worker, round)`` pair is stale with probability ``prob``,
    with a lag drawn uniformly from ``{1, ..., max_delay}`` — a simple
    model of jittery network/compute heterogeneity.  The draw is
    *counter-based*: ``staleness(i, t)`` keys a ``SeedSequence`` on the
    bound entropy plus ``(i, t)``, so it is a pure function queryable in
    any order (the loop and batched executors must agree) and never
    consumes shared stream state.

    Unbound instances (``entropy=None``) must be :meth:`bind`-ed before
    use; the simulator does this with a stream spawned from its root
    seed, making the whole delay pattern a function of the cell's seed.
    """

    name = "random"

    def __init__(
        self,
        max_delay: int = 4,
        prob: float = 1.0,
        entropy: int | None = None,
    ):
        if int(max_delay) < 1:
            raise ConfigurationError(
                f"max_delay must be >= 1, got {max_delay}"
            )
        if not 0.0 <= float(prob) <= 1.0:
            raise ConfigurationError(
                f"prob must be in [0, 1], got {prob}"
            )
        self.max_delay = int(max_delay)
        self.prob = float(prob)
        self.entropy = None if entropy is None else int(entropy)

    def bind(self, rng: np.random.Generator) -> "SeededRandomDelay":
        return SeededRandomDelay(
            max_delay=self.max_delay,
            prob=self.prob,
            entropy=int(rng.integers(0, 2**63)),
        )

    def staleness(self, worker_id: int, round_index: int) -> int:
        if self.entropy is None:
            raise ConfigurationError(
                "unbound random delay schedule: pass it to a simulation "
                "(which binds it from the root seed) or call bind() first"
            )
        words = np.random.SeedSequence(
            entropy=(self.entropy, int(worker_id), int(round_index))
        ).generate_state(2, dtype=np.uint64)
        if self.prob < 1.0 and float(words[0]) / 2.0**64 >= self.prob:
            return 0
        return int(words[1] % np.uint64(self.max_delay)) + 1


# ----------------------------------------------------------------------
# Registry

_REGISTRY: dict[str, Callable[..., DelaySchedule]] = {}


def register_delay_schedule(
    name: str, factory: Callable[..., DelaySchedule]
) -> None:
    """Register a schedule under ``name``; later registrations override."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"delay schedule name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def available_delay_schedules() -> list[str]:
    """Sorted list of registered schedule names."""
    return sorted(_REGISTRY)


def delay_schedule_factory(name: str) -> Callable[..., DelaySchedule]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown delay schedule {name!r}; available: "
            f"{available_delay_schedules()}"
        )
    return _REGISTRY[name]


def make_delay_schedule(
    name: str | None, kwargs: Mapping[str, object] | None = None
) -> DelaySchedule | None:
    """Build a schedule by name, e.g. ``make_delay_schedule("constant", {"tau": 2})``.

    ``name=None`` returns ``None`` (the synchronous arm), so callers can
    thread an optional delay spec straight through — the same contract
    as :func:`~repro.attacks.registry.make_attack`.  Keyword arguments
    that do not fit the factory's signature raise
    :class:`ConfigurationError` naming the schedule and the parameters
    it accepts.
    """
    if name is None:
        if kwargs:
            raise ConfigurationError(
                f"delay kwargs {dict(kwargs)!r} were given without a "
                f"delay schedule name"
            )
        return None
    factory = delay_schedule_factory(name)
    resolved = dict(kwargs or {})
    check_factory_kwargs("delay schedule", name, factory, resolved)
    return factory(**resolved)


register_delay_schedule("none", ZeroDelay)
register_delay_schedule("constant", ConstantDelay)
register_delay_schedule("periodic", PeriodicDelay)
register_delay_schedule("random", SeededRandomDelay)
