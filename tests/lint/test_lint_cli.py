"""CLI behaviour: exit codes, --select/--ignore, JSON output, --help."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import repro
from repro.lint.cli import main

BAD_MODULE = """
import numpy as np


def sample():
    return np.random.default_rng(3).normal()


def check(x):
    raise ValueError("nope")
"""


def write_bad_module(tmp_path: Path) -> Path:
    target = tmp_path / "bad.py"
    target.write_text(textwrap.dedent(BAD_MODULE))
    return target


def test_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main([str(target)]) == 0
    out = capsys.readouterr().out
    assert "0 findings in 1 file(s) checked" in out


def test_findings_exit_one_with_rendered_lines(tmp_path, capsys):
    target = write_bad_module(tmp_path)
    assert main([str(target)]) == 1
    out = capsys.readouterr().out
    assert "[rng-discipline]" in out
    assert "[error-taxonomy]" in out
    assert "2 findings in 1 file(s) checked" in out


def test_select_restricts_rules(tmp_path, capsys):
    target = write_bad_module(tmp_path)
    assert main([str(target), "--select", "error-taxonomy"]) == 1
    out = capsys.readouterr().out
    assert "[error-taxonomy]" in out
    assert "[rng-discipline]" not in out


def test_ignore_drops_rules(tmp_path, capsys):
    target = write_bad_module(tmp_path)
    assert main([str(target), "--ignore", "error-taxonomy"]) == 1
    out = capsys.readouterr().out
    assert "[rng-discipline]" in out
    assert "[error-taxonomy]" not in out


def test_json_format_matches_report_schema(tmp_path, capsys):
    target = write_bad_module(tmp_path)
    assert main([str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["summary"]["total"] == 2
    assert payload["summary"]["by_rule"] == {
        "error-taxonomy": 1,
        "rng-discipline": 1,
    }
    rules = {finding["rule"] for finding in payload["findings"]}
    assert rules == {"error-taxonomy", "rng-discipline"}


def test_output_writes_json_report_in_text_mode(tmp_path, capsys):
    target = write_bad_module(tmp_path)
    report_path = tmp_path / "report.json"
    assert main([str(target), "--output", str(report_path)]) == 1
    capsys.readouterr()
    payload = json.loads(report_path.read_text())
    assert payload["summary"]["total"] == 2


def test_unknown_rule_exits_two(tmp_path, capsys):
    target = write_bad_module(tmp_path)
    assert main([str(target), "--select", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "repro-lint: error:" in err
    assert "no-such-rule" in err


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "ghost.py")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_no_paths_exits_two(capsys):
    assert main([]) == 2
    assert "no paths given" in capsys.readouterr().err


def test_list_rules_names_every_builtin(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "backend-purity",
        "rng-discipline",
        "error-taxonomy",
        "stateful-attack-declaration",
        "registry-factory-contract",
        "syntax-error",
        "unused-suppression",
    ):
        assert name in out


def test_module_help_smoke():
    # The documented entry point: ``python -m repro.lint --help`` must
    # work from a fresh interpreter with only PYTHONPATH=src set.
    src_dir = Path(repro.__file__).parent.parent
    env = dict(os.environ, PYTHONPATH=str(src_dir))
    completed = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--help"],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert completed.returncode == 0
    assert "python -m repro.lint" in completed.stdout
    assert "--select" in completed.stdout


def test_jobs_flag_matches_serial_output(tmp_path, capsys):
    write_bad_module(tmp_path)
    assert main([str(tmp_path), "--format", "json", "--jobs", "2"]) == 1
    parallel = json.loads(capsys.readouterr().out)
    assert main([str(tmp_path), "--format", "json"]) == 1
    serial = json.loads(capsys.readouterr().out)
    assert parallel == serial


def test_no_project_flag_disables_whole_program_rules(tmp_path, capsys):
    (tmp_path / "sim.py").write_text(
        "def spawn_generators(seed, count):\n"
        "    return list(range(count))\n"
        "\n"
        "def setup(seed):\n"
        "    first, second = spawn_generators(seed, 3)\n"
        "    return first, second\n"
    )
    assert main([str(tmp_path), "--select", "rng-stream-order"]) == 1
    capsys.readouterr()
    assert (
        main([str(tmp_path), "--select", "rng-stream-order", "--no-project"])
        == 0
    )


def test_sarif_format_stdout(tmp_path, capsys):
    write_bad_module(tmp_path)
    assert main([str(tmp_path), "--format", "sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"]


def test_sarif_output_file(tmp_path, capsys):
    write_bad_module(tmp_path)
    out = tmp_path / "lint.sarif"
    assert main(
        [str(tmp_path), "--format", "sarif", "--output", str(out)]
    ) == 1
    capsys.readouterr()
    assert json.loads(out.read_text())["version"] == "2.1.0"
