"""Tests for Multi-Krum."""

import numpy as np
import pytest

from repro.core.krum import Krum, MultiKrum, krum_scores
from repro.exceptions import ByzantineToleranceError, ConfigurationError


class TestMultiKrum:
    def test_m_equals_one_reduces_to_krum(self, rng):
        vectors = rng.standard_normal((11, 6))
        krum_out = Krum(f=3).aggregate(vectors)
        multi_out = MultiKrum(f=3, m=1).aggregate(vectors)
        np.testing.assert_array_equal(krum_out, multi_out)

    def test_output_is_mean_of_selected(self, rng):
        vectors = rng.standard_normal((12, 4))
        rule = MultiKrum(f=3, m=4)
        result = rule.aggregate_detailed(vectors)
        np.testing.assert_allclose(
            result.vector, vectors[result.selected].mean(axis=0)
        )

    def test_selected_are_lowest_scores(self, rng):
        vectors = rng.standard_normal((13, 5))
        rule = MultiKrum(f=3, m=5)
        result = rule.aggregate_detailed(vectors)
        scores = krum_scores(vectors, 3)
        worst_selected = scores[result.selected].max()
        unselected = np.setdiff1d(np.arange(13), result.selected)
        assert np.all(scores[unselected] >= worst_selected - 1e-12)

    def test_excludes_far_byzantine(self, honest_cloud, rng):
        byzantine = 1e5 * np.ones((3, 8))
        stack = np.vstack([honest_cloud, byzantine])
        result = MultiKrum(f=3, m=6).aggregate_detailed(stack)
        assert np.all(result.selected < 10)

    def test_m_bound_enforced_strict(self):
        vectors = np.zeros((11, 2))
        rule = MultiKrum(f=3, m=7)  # n - f - 2 = 6 < 7
        with pytest.raises(ByzantineToleranceError, match="m <= n - f - 2"):
            rule.aggregate(vectors)

    def test_m_up_to_n_in_relaxed_mode(self, rng):
        vectors = rng.standard_normal((11, 3))
        rule = MultiKrum(f=3, m=11, strict=False)
        result = rule.aggregate_detailed(vectors)
        # With m = n, Multi-Krum degenerates to plain averaging.
        np.testing.assert_allclose(result.vector, vectors.mean(axis=0))

    def test_m_above_n_rejected_even_relaxed(self):
        vectors = np.zeros((8, 2))
        with pytest.raises(ConfigurationError):
            MultiKrum(f=2, m=9, strict=False).aggregate(vectors)

    def test_m_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MultiKrum(f=2, m=0)

    def test_deterministic_tie_break(self):
        vectors = np.zeros((9, 3))  # all identical: every score ties at 0
        result = MultiKrum(f=2, m=3).aggregate_detailed(vectors)
        np.testing.assert_array_equal(result.selected, [0, 1, 2])

    def test_stable_tie_break_across_duplicate_groups(self):
        """Regression: within each tied score group the stable sort must
        select the smallest worker identifiers, and groups must be
        ordered by score — the deterministic selection the engine's
        batched kernel replicates."""
        n, f = 10, 2  # num_neighbors = 6
        a_ids = [1, 3, 4, 6, 8, 9]  # 6 copies of proposal A
        b_ids = [0, 2, 5, 7]  # 4 copies of proposal B
        vectors = np.empty((n, 2))
        vectors[a_ids] = [1.0, 0.0]
        vectors[b_ids] = [5.0, 0.0]
        scores = krum_scores(vectors, f)
        # Every A row ties (5 zero distances + 1 cross distance) and every
        # B row ties at a strictly larger score (3 zeros + 3 cross).
        assert len(np.unique(scores[a_ids])) == 1
        assert len(np.unique(scores[b_ids])) == 1
        assert scores[a_ids][0] < scores[b_ids][0]

        result = MultiKrum(f=f, m=8, strict=False).aggregate_detailed(vectors)
        np.testing.assert_array_equal(result.selected, a_ids + b_ids[:2])
        np.testing.assert_allclose(
            result.vector, vectors[result.selected].mean(axis=0)
        )

    def test_variance_reduction_over_krum(self, rng):
        # With no Byzantine workers, Multi-Krum's average of m vectors has
        # lower deviation from the true mean than single-vector Krum.
        truth = np.full(6, 1.0)
        krum_err, multi_err = 0.0, 0.0
        trials = 40
        for t in range(trials):
            trial_rng = np.random.default_rng(t)
            vectors = truth + trial_rng.standard_normal((13, 6))
            krum_err += float(
                np.linalg.norm(Krum(f=2).aggregate(vectors) - truth)
            )
            multi_err += float(
                np.linalg.norm(MultiKrum(f=2, m=9).aggregate(vectors) - truth)
            )
        assert multi_err < krum_err
