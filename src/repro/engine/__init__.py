"""Scenario-grid engine: declarative grids, batched execution.

The paper's experiments are grids — seeds × attacks × aggregators × f —
and the seed code ran every cell as an independent Python round loop.
This package batches B replica cells into ``(B, n, d)`` proposal tensors
so the benchmark wall-time tracks the O(n² · d) aggregation arithmetic
(Lemma 4.1) instead of interpreter overhead, while staying bit-for-bit
identical to the per-cell loop (the differential test harness in
``tests/engine/`` proves it).

Quickstart::

    from repro.engine import ScenarioGrid, run_grid

    grid = ScenarioGrid(
        seeds=(0, 1, 2),
        attacks=(("gaussian", {"sigma": 200.0}), ("omniscient", {})),
        aggregators=(("krum", {}), ("average", {})),
        f_values=(0, 3),
        num_workers=15, dimension=50, sigma=0.2, num_rounds=40,
    )
    result = run_grid(grid, mode="batched")
    for label, history in result.histories.items():
        print(label, history.final_loss)

``run_grid(grid, mode="loop")`` executes the same cells through the
classic one-simulation-at-a-time path — same histories, more wall time —
which is what the engine benchmark (``benchmarks/bench_engine_grid.py``)
measures and ``BENCH_engine.json`` records.
"""

from repro.engine.grid import ScenarioGrid, ScenarioSpec
from repro.engine.runner import GridResult, build_scenario_simulation, run_grid
from repro.engine.simulation import BatchedSimulation

__all__ = [
    "ScenarioGrid",
    "ScenarioSpec",
    "BatchedSimulation",
    "GridResult",
    "build_scenario_simulation",
    "run_grid",
]
