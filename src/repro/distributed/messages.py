"""Message types exchanged in the synchronous rounds.

The simulation is single-process, but modeling the wire format keeps the
server/worker boundary honest: the server sees nothing but
``GradientMessage``s, exactly like the paper's parameter server.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionMismatchError

__all__ = ["ParameterBroadcast", "GradientMessage"]


@dataclass(frozen=True)
class ParameterBroadcast:
    """Server → workers: the round number and current parameter vector."""

    round_index: int
    params: np.ndarray

    def __post_init__(self) -> None:
        params = np.asarray(self.params, dtype=np.float64)
        if params.ndim != 1:
            raise DimensionMismatchError(
                f"broadcast params must be 1-d, got shape {params.shape}"
            )
        object.__setattr__(self, "params", params)


@dataclass(frozen=True)
class GradientMessage:
    """Worker → server: the proposed update vector for this round."""

    round_index: int
    worker_id: int
    vector: np.ndarray

    def __post_init__(self) -> None:
        vector = np.asarray(self.vector, dtype=np.float64)
        if vector.ndim != 1:
            raise DimensionMismatchError(
                f"gradient message must be 1-d, got shape {vector.shape}"
            )
        object.__setattr__(self, "vector", vector)
