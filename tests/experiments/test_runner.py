"""Tests for the config-driven experiment runner."""

import pytest

from repro.data.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.experiments.config import SGDExperimentConfig
from repro.experiments.runner import compare_aggregators, run_experiment
from repro.models.softmax import SoftmaxRegressionModel


@pytest.fixture
def blobs():
    return make_blobs(150, num_classes=3, num_features=4, spread=0.5, seed=0)


def _config(**overrides):
    defaults = dict(
        num_workers=9,
        num_byzantine=2,
        num_rounds=30,
        aggregator="krum",
        aggregator_kwargs={"f": 2},
        attack="gaussian",
        attack_kwargs={"sigma": 50.0},
        learning_rate=0.3,
        batch_size=16,
        eval_every=10,
        seed=0,
    )
    defaults.update(overrides)
    return SGDExperimentConfig(**defaults)


class TestRunExperiment:
    def test_runs_config(self, blobs):
        history = run_experiment(_config(), SoftmaxRegressionModel(4, 3), blobs)
        assert len(history) == 30
        assert history.final_loss is not None

    def test_unknown_attack_name(self, blobs):
        config = _config(attack="quantum", attack_kwargs={})
        with pytest.raises(ConfigurationError, match="unknown attack"):
            run_experiment(config, SoftmaxRegressionModel(4, 3), blobs)

    def test_f_zero_no_attack(self, blobs):
        config = _config(num_byzantine=0, attack=None, attack_kwargs={})
        history = run_experiment(config, SoftmaxRegressionModel(4, 3), blobs)
        assert history.final_accuracy > 0.5


class TestCompareAggregators:
    def test_same_workload_multiple_rules(self, blobs):
        base = _config()
        results = compare_aggregators(
            base,
            {
                "krum": ("krum", {"f": 2}),
                "average": ("average", {}),
                "median": ("coordinate-median", {}),
            },
            lambda: SoftmaxRegressionModel(4, 3),
            blobs,
        )
        assert set(results) == {"krum", "average", "median"}
        for history in results.values():
            assert len(history) == 30

    def test_krum_beats_average_under_attack(self, blobs):
        base = _config(
            num_rounds=60,
            attack="omniscient",
            attack_kwargs={"scale": 20.0},
        )
        results = compare_aggregators(
            base,
            {"krum": ("krum", {"f": 2}), "average": ("average", {})},
            lambda: SoftmaxRegressionModel(4, 3),
            blobs,
        )
        assert results["krum"].final_loss < results["average"].final_loss
