"""SARIF 2.1.0 emitter for lint reports.

SARIF (Static Analysis Results Interchange Format) is the schema code
scanners speak to code-review UIs: one ``run`` per tool invocation, the
tool's rule inventory under ``tool.driver.rules``, and one ``result``
per finding with a physical location.  Emitting it lets CI upload
repro-lint findings to code scanning and lets editors surface them
inline — without teaching either about the native JSON report.

Only the stable core of the spec is emitted (no graphs, no code flows):
``version``/``$schema``, driver name and rule metadata (id, short
description), and per-result ``ruleId``, ``level``, ``message.text``
and ``physicalLocation`` with a 1-based ``region``.  Every finding is
``level: "error"`` — repro-lint invariants gate the build; a warning
tier would just be a finding someone decided to stop reading.
"""

from __future__ import annotations

import json
from pathlib import PurePath

from repro.lint.engine import LintReport
from repro.lint.findings import Finding
from repro.lint.registry import rule_descriptions

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "sarif_report", "as_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

_TOOL_NAME = "repro-lint"


def _artifact_uri(path: str) -> str:
    """Forward-slash relative URI for a finding path (SARIF wants URIs)."""
    pure = PurePath(path)
    posix = pure.as_posix()
    if posix.startswith("/"):
        posix = posix.lstrip("/")
    return posix


def _rule_entries(report: LintReport) -> list[dict[str, object]]:
    """Driver rule inventory, in the report's (stable) rule order."""
    descriptions = rule_descriptions()
    entries = []
    for name in report.rule_names:
        entries.append(
            {
                "id": name,
                "name": name,
                "shortDescription": {
                    "text": descriptions.get(name, "") or name
                },
                "defaultConfiguration": {"level": "error"},
            }
        )
    return entries


def _result(finding: Finding, rule_index: dict[str, int]) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(finding.path),
                    },
                    "region": {
                        "startLine": int(finding.line),
                        "startColumn": int(finding.column),
                    },
                }
            }
        ],
    }
    index = rule_index.get(finding.rule)
    if index is not None:
        result["ruleIndex"] = index
    return result


def sarif_report(report: LintReport) -> dict[str, object]:
    """The SARIF 2.1.0 document for ``report``, as a plain dict."""
    rules = _rule_entries(report)
    rule_index = {name: i for i, name in enumerate(report.rule_names)}
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "rules": rules,
                    }
                },
                "results": [
                    _result(finding, rule_index)
                    for finding in report.findings
                ],
            }
        ],
    }


def as_sarif(report: LintReport) -> str:
    return json.dumps(sarif_report(report), indent=2, sort_keys=False)
