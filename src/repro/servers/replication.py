"""The replicated parameter-server group — Byzantine servers in the model.

:class:`ReplicatedServerGroup` promotes the single
:class:`~repro.distributed.server.ParameterServer` to a server *tier* in
the ByzSGD/Garfield mold:

* ``num_servers`` replicas hold the parameter state.  Honest replicas
  stay lock-step on one canonical vector ``x_t`` (they aggregate the
  same proposals with the same deterministic rule), so the canonical
  state is represented once.
* up to ``byzantine_servers`` replicas are Byzantine: each round they
  broadcast whatever their :class:`~repro.servers.attacks.ServerAttack`
  crafts instead of ``x_t``.  Corruption perturbs only what workers
  *receive* — the fault model is corrupted broadcasts, not divergent
  honest state.
* workers defend with a ByzSGD-style **coordinate-wise median** over the
  ``num_servers`` replica broadcasts before computing gradients.  The
  resulting *worker view* ``x̃_t`` is what this group broadcasts, what
  stale workers read back (:meth:`params_at`), and what staleness-aware
  filters receive as used parameters — exactly what the workers acted
  on.
* ``num_shards > 1`` additionally routes aggregation through
  :class:`~repro.servers.sharding.ShardedAggregator`: each shard
  aggregates only its coordinate slice of the proposal stack.

The degenerate configuration ``num_servers=1, byzantine_servers=0,
num_shards=1`` takes none of these paths: no view is computed, no RNG is
consumed, no wrapper is installed — the group *is* the single-server
engine bit for bit, the same guarantee discipline as ``max_staleness=0``
(``tests/servers/test_server_differential.py`` pins it).

With ``byzantine_servers = 0`` the view is exact for *any* replica
count: the coordinate median of ``num_servers`` identical honest rows is
the row itself (odd counts pick the middle element, even counts average
two equal values), so honest replication alone never forks a trajectory.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.aggregator import AggregationResult, Aggregator
from repro.distributed.messages import GradientMessage, ParameterBroadcast
from repro.distributed.schedules import LearningRateSchedule
from repro.distributed.server import ParameterServer
from repro.exceptions import ConfigurationError, SimulationError
from repro.servers.attacks import ServerAttack, ServerAttackContext
from repro.servers.registry import make_server_attack
from repro.servers.sharding import ShardedAggregator, ShardedParameterState

__all__ = ["ReplicatedServerGroup", "replica_view"]


def replica_view(broadcasts: np.ndarray) -> np.ndarray:
    """The worker-side defense: coordinate-wise median over replica
    broadcasts.

    ``broadcasts`` is ``(num_servers, d)`` — one row per replica.  The
    median is taken per coordinate (ByzSGD's worker-side aggregation),
    so a minority of corrupted rows cannot move any coordinate outside
    the honest range.  Permutation-invariant in replica order, and exact
    (returns the common row bit-for-bit) when all rows agree.
    """
    broadcasts = np.asarray(broadcasts, dtype=np.float64)
    if broadcasts.ndim != 2 or broadcasts.shape[0] < 1:
        raise ConfigurationError(
            f"broadcasts must be (num_servers, d) with at least one "
            f"replica, got shape {broadcasts.shape}"
        )
    return np.median(broadcasts, axis=0)


class ReplicatedServerGroup(ParameterServer):
    """A parameter-server tier: replicas, Byzantine broadcasts, shards.

    Parameters
    ----------
    num_servers:
        Replica count (>= 1).
    byzantine_servers:
        How many replicas the adversary controls (the *last*
        ``byzantine_servers`` replica ids); requires ``server_attack``
        when positive.  ``byzantine_servers = num_servers`` is legal —
        it is the configuration the single-server headline measurement
        uses (one replica, fully corrupted).
    num_shards:
        Coordinate shards for per-shard aggregation; must not exceed the
        parameter dimension.  ``1`` keeps the plain rule.
    server_attack:
        A :class:`~repro.servers.attacks.ServerAttack` instance or
        registry name crafting the corrupted broadcasts.
    rng:
        The attack's dedicated RNG stream (required when
        ``byzantine_servers > 0``); simulations spawn it from the cell's
        root seed alongside the worker and worker-attack streams.

    The remaining parameters match :class:`ParameterServer`.
    """

    def __init__(
        self,
        initial_params: np.ndarray,
        aggregator: Aggregator,
        schedule: LearningRateSchedule,
        *,
        num_servers: int = 1,
        byzantine_servers: int = 0,
        num_shards: int = 1,
        server_attack: ServerAttack | str | None = None,
        rng: np.random.Generator | None = None,
        halt_on_nonfinite: bool = False,
        max_staleness: int = 0,
    ):
        if int(num_servers) < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {num_servers}"
            )
        if not 0 <= int(byzantine_servers) <= int(num_servers):
            raise ConfigurationError(
                f"need 0 <= byzantine_servers <= num_servers, got "
                f"byzantine_servers={byzantine_servers} with "
                f"num_servers={num_servers}"
            )
        if isinstance(server_attack, str):
            server_attack = make_server_attack(server_attack)
        if server_attack is not None and not isinstance(
            server_attack, ServerAttack
        ):
            raise ConfigurationError(
                f"server_attack must be a ServerAttack, registry name or "
                f"None, got {type(server_attack).__name__}"
            )
        if int(byzantine_servers) > 0 and server_attack is None:
            raise ConfigurationError(
                f"byzantine_servers={byzantine_servers} requires a "
                f"server_attack"
            )
        if int(byzantine_servers) == 0 and server_attack is not None:
            raise ConfigurationError(
                "a server_attack was supplied but byzantine_servers=0"
            )
        if int(byzantine_servers) > 0 and rng is None:
            raise ConfigurationError(
                "byzantine_servers > 0 requires an rng stream for the "
                "server attack"
            )
        self.num_servers = int(num_servers)
        self.byzantine_servers = int(byzantine_servers)
        self.num_shards = int(num_shards)
        self.server_attack = server_attack
        self._server_rng = rng
        # The adversary controls the last replica ids (fixed placement —
        # replica identity carries no tie-break semantics, unlike worker
        # slots).
        self.byzantine_server_ids = np.arange(
            self.num_servers - self.byzantine_servers,
            self.num_servers,
            dtype=np.int64,
        )
        if self.num_shards > 1:
            aggregator = ShardedAggregator(aggregator, self.num_shards)
        super().__init__(
            initial_params,
            aggregator,
            schedule,
            halt_on_nonfinite=halt_on_nonfinite,
            max_staleness=max_staleness,
        )
        # shard_bounds validates num_shards against the now-known
        # dimension (every shard must own at least one coordinate).
        self._sharded_state = (
            ShardedParameterState(self._params, self.num_shards)
            if self.num_shards > 1
            else None
        )
        if self.server_attack is not None:
            # Fresh run: discard any state a reused attack instance may
            # carry from a previous simulation (replay histories, ...),
            # mirroring the simulator's worker-attack reset.
            self.server_attack.reset()
        # Worker views of the last max_staleness + 1 rounds (only
        # maintained while the tier is active); views[-1] is x̃_t once
        # the current round's view is materialized.
        self._views: deque[np.ndarray] = deque(maxlen=self.max_staleness + 1)
        self._view_round = -1

    # ------------------------------------------------------------------

    @property
    def tier_active(self) -> bool:
        """Whether broadcasts go through the replica-view path.

        Sharding alone does not activate it — shards change the
        aggregation, not what workers receive.
        """
        return self.num_servers > 1 or self.byzantine_servers > 0

    @property
    def sharded_state(self) -> ShardedParameterState | None:
        """The canonical state decomposed into shard views (``None``
        for the unsharded server)."""
        if self._sharded_state is not None:
            # Keep the decomposition in lock-step with the canonical
            # vector (the base server replaces ``_params`` each step).
            self._sharded_state = ShardedParameterState(
                self._params, self.num_shards
            )
        return self._sharded_state

    def replica_broadcasts(
        self, params: np.ndarray, round_index: int
    ) -> np.ndarray:
        """The ``(num_servers, d)`` matrix of what each replica
        broadcasts this round: honest replicas the canonical ``params``,
        Byzantine replicas whatever the server attack crafts.

        Consumes the server-attack RNG stream once per call, so callers
        must invoke it exactly once per round (:meth:`corrupted_view`
        does; the executors call that).
        """
        matrix = np.tile(
            np.asarray(params, dtype=np.float64), (self.num_servers, 1)
        )
        if self.byzantine_servers > 0:
            assert self.server_attack is not None
            context = ServerAttackContext(
                round_index=int(round_index),
                params=np.asarray(params, dtype=np.float64).copy(),
                num_servers=self.num_servers,
                byzantine_indices=self.byzantine_server_ids,
                rng=self._server_rng,
            )
            matrix[self.byzantine_server_ids] = self.server_attack.corrupt(
                context
            )
        return matrix

    def corrupted_view(
        self, params: np.ndarray, round_index: int
    ) -> np.ndarray:
        """One round's worker view ``x̃_t``: the coordinate median over
        the replica broadcasts of ``params`` at ``round_index``.

        The batched executor calls this with its externally-tracked
        parameter row; the loop path calls it through
        :meth:`_ensure_view` with the canonical state.  Either way the
        attack sees the same canonical ``x_t`` and the RNG stream
        advances identically — the loop/batched differential guarantee.
        """
        return replica_view(self.replica_broadcasts(params, round_index))

    def _ensure_view(self) -> None:
        """Materialize the current round's worker view exactly once."""
        if self._view_round == self.round_index:
            return
        if self._view_round not in (self.round_index - 1, -1):
            raise SimulationError(
                f"view history skipped from round {self._view_round} to "
                f"{self.round_index}; broadcast() or step() must run "
                f"every round"
            )
        self._views.append(
            self.corrupted_view(self._params, self.round_index)
        )
        self._view_round = self.round_index

    # ------------------------------------------------------------------

    def params_at(self, round_index: int) -> np.ndarray:
        """The *worker view* broadcast at the start of ``round_index``.

        Under an active tier this is the coordinate-median view (what
        stale workers actually computed against); the degenerate tier
        serves the canonical history unchanged.
        """
        if not self.tier_active:
            return super().params_at(round_index)
        self._ensure_view()
        offset = self.round_index - int(round_index)
        if offset < 0 or offset >= len(self._views):
            raise SimulationError(
                f"round {round_index} is outside the retained window "
                f"[{self.round_index - len(self._views) + 1}, "
                f"{self.round_index}] (max_staleness={self.max_staleness})"
            )
        return self._views[-1 - offset].copy()

    def broadcast(self) -> ParameterBroadcast:
        """Start a round: publish the worker view ``x̃_t``."""
        if not self.tier_active:
            return super().broadcast()
        self._ensure_view()
        return ParameterBroadcast(
            round_index=self.round_index, params=self._views[-1].copy()
        )

    def step(self, messages: list[GradientMessage]) -> AggregationResult:
        """Finish a round on the canonical state.

        Honest replicas aggregate the same proposals with the same
        deterministic rule, so one canonical update stands for all of
        them.  The view is materialized first so a caller that skipped
        ``broadcast()`` still consumes the attack stream once per round.
        """
        if self.tier_active:
            self._ensure_view()
        return super().step(messages)
