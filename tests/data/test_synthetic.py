"""Tests for synthetic task generators."""

import numpy as np
import pytest

from repro.data.synthetic import make_blobs, make_linear_regression, make_logistic_data
from repro.exceptions import ConfigurationError


class TestMakeBlobs:
    def test_shapes(self):
        ds = make_blobs(50, num_classes=4, num_features=3, seed=0)
        assert ds.inputs.shape == (50, 3)
        assert ds.num_classes == 4
        assert ds.task == "multiclass"

    def test_reproducible(self):
        a = make_blobs(20, seed=7)
        b = make_blobs(20, seed=7)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_clusters_are_separated_with_small_spread(self):
        ds = make_blobs(300, num_classes=3, spread=0.05, seed=1)
        # Class-conditional means should be far apart relative to spread.
        means = np.stack(
            [ds.inputs[ds.targets == c].mean(axis=0) for c in range(3)]
        )
        min_dist = min(
            np.linalg.norm(means[i] - means[j])
            for i in range(3)
            for j in range(i + 1, 3)
        )
        assert min_dist > 1.0

    def test_rejects_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            make_blobs(2, num_classes=3)


class TestMakeLinearRegression:
    def test_noiseless_data_is_exactly_linear(self):
        ds, params = make_linear_regression(40, num_features=3, noise=0.0, seed=2)
        predictions = ds.inputs @ params[:-1] + params[-1]
        np.testing.assert_allclose(predictions, ds.targets, atol=1e-12)

    def test_noise_increases_residuals(self):
        ds, params = make_linear_regression(500, num_features=3, noise=0.5, seed=2)
        residuals = ds.targets - (ds.inputs @ params[:-1] + params[-1])
        assert residuals.std() == pytest.approx(0.5, rel=0.2)


class TestMakeLogisticData:
    def test_labels_binary(self):
        ds, _params = make_logistic_data(100, seed=3)
        assert set(np.unique(ds.targets)) <= {0, 1}
        assert ds.task == "binary"

    def test_margin_scale_controls_separability(self):
        easy, w_easy = make_logistic_data(2000, margin_scale=8.0, seed=4)
        hard, w_hard = make_logistic_data(2000, margin_scale=0.5, seed=4)

        def bayes_accuracy(ds, w):
            logits = ds.inputs @ w[:-1] + w[-1]
            return np.mean((logits > 0).astype(int) == ds.targets)

        assert bayes_accuracy(easy, w_easy) > bayes_accuracy(hard, w_hard)
