"""The lint-rule registry follows the shared registry contract."""

from __future__ import annotations

from collections.abc import Iterable

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import (
    Finding,
    LintRule,
    available_rules,
    make_rule,
    register_rule,
    rule_factory,
)
from repro.lint.registry import rule_descriptions


def test_builtin_rules_are_registered():
    names = available_rules()
    for expected in (
        "backend-purity",
        "rng-discipline",
        "error-taxonomy",
        "stateful-attack-declaration",
        "registry-factory-contract",
        "syntax-error",
        "unused-suppression",
    ):
        assert expected in names


def test_make_rule_round_trip():
    rule = make_rule("error-taxonomy")
    assert isinstance(rule, LintRule)
    assert rule.name == "error-taxonomy"


def test_unknown_rule_raises_configuration_error():
    with pytest.raises(ConfigurationError, match="unknown lint rule"):
        make_rule("no-such-rule")
    with pytest.raises(ConfigurationError, match="unknown lint rule"):
        rule_factory("no-such-rule")


def test_bad_kwargs_raise_configuration_error():
    with pytest.raises(ConfigurationError, match="error-taxonomy"):
        make_rule("error-taxonomy", kwargs={"bogus_option": 1})


def test_register_rule_rejects_empty_name():
    class Dummy(LintRule):
        name = "dummy"
        description = "dummy"

        def check(self, module) -> Iterable[Finding]:
            return ()

    with pytest.raises(ConfigurationError, match="non-empty string"):
        register_rule("", Dummy)


def test_custom_rule_registration_and_kwargs():
    class ShoutRule(LintRule):
        name = "test-shout"
        description = "test-only rule"

        def __init__(self, loudness: int = 1):
            self.loudness = loudness

        def check(self, module) -> Iterable[Finding]:
            return ()

    register_rule("test-shout", ShoutRule)
    try:
        assert "test-shout" in available_rules()
        rule = make_rule("test-shout", kwargs={"loudness": 3})
        assert rule.loudness == 3
        assert rule_descriptions()["test-shout"] == "test-only rule"
    finally:
        # Keep the global registry pristine for the other tests (the
        # codebase-clean gate runs "all registered rules").
        from repro.lint import registry as registry_module

        registry_module._REGISTRY.pop("test-shout", None)
    assert "test-shout" not in available_rules()
