"""The numpy backend is a refactor-invariant, not a numerical change.

Routing a kernel through an explicit ``NumpyBackend`` must produce
**bit-for-bit** (``tobytes``) the same arrays as the default call path —
that is the anchor of the engine's loop/batched differential guarantee
after the backend redesign.  These tests also pin the dtype audit: a
float32 numpy backend must flow float32 end to end instead of being
silently promoted back to float64 by stray literals or ``np.empty``
allocations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend, make_backend
from repro.baselines.average import Average
from repro.baselines.distance_based import ClosestToAll
from repro.baselines.medians import (
    CoordinateWiseMedian,
    GeometricMedian,
    TrimmedMean,
    batched_weiszfeld,
)
from repro.core.batched import (
    batched_krum_scores,
    make_batched_aggregator,
)
from repro.core.bulyan import Bulyan, batched_bulyan
from repro.core.krum import Krum, MultiKrum
from repro.engine import BatchedSimulation, ScenarioGrid, run_grid
from repro.utils.linalg import (
    batched_pairwise_sq_distances,
    masked_coordinate_median,
    masked_krum_scores,
    pairwise_sq_distances,
)

# One rule instance per registered native kernel, sized for n = 11.
NATIVE_RULES = [
    Krum(f=2),
    MultiKrum(f=2, m=3),
    Average(),
    CoordinateWiseMedian(),
    TrimmedMean(f=2),
    ClosestToAll(),
    Bulyan(f=2),
    GeometricMedian(),
]


def reference_batch(seed: int = 7, batch: int = 6, n: int = 11, d: int = 13):
    """A randomized batch with the adversarial corners mixed in."""
    rng = np.random.default_rng(seed)
    stacks = rng.standard_normal((batch, n, d))
    stacks[1, 3] = stacks[1, 0]  # exact duplicates (tie-break paths)
    stacks[2, -1] = np.nan  # non-finite Byzantine row
    stacks[3, -1] = 1e8  # far outlier
    stacks[4] = 1.5  # fully coincident cloud (Weiszfeld singularity)
    return stacks


def rule_batch(rule, seed: int = 7) -> np.ndarray:
    """The reference batch, definite-valued for rules that (by design)
    refuse non-finite rows: Weiszfeld never converges on NaN proposals,
    so the geometric median gets the same corners with the NaN row
    replaced by a finite outlier."""
    stacks = reference_batch(seed)
    if isinstance(rule, GeometricMedian):
        stacks[2, -1] = -3e4
    return stacks


def bitwise_equal(a, b) -> bool:
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and a.dtype == b.dtype and a.tobytes() == b.tobytes()


class TestKernelExactness:
    @pytest.mark.parametrize("rule", NATIVE_RULES, ids=lambda r: r.name)
    def test_explicit_numpy_backend_is_bitwise_identical(self, rule):
        stacks = rule_batch(rule)
        baseline = make_batched_aggregator(rule).aggregate_batch(stacks)
        routed = make_batched_aggregator(
            rule, backend=NumpyBackend()
        ).aggregate_batch(stacks)
        assert bitwise_equal(baseline.vectors, routed.vectors)
        assert len(baseline.selected) == len(routed.selected)
        for left, right in zip(baseline.selected, routed.selected):
            assert np.array_equal(left, right)
        if baseline.scores is None:
            assert routed.scores is None
        else:
            assert bitwise_equal(baseline.scores, routed.scores)

    @pytest.mark.parametrize("rule", NATIVE_RULES, ids=lambda r: r.name)
    def test_backend_name_string_is_accepted(self, rule):
        stacks = rule_batch(rule, seed=9)
        by_name = make_batched_aggregator(rule, backend="numpy")
        by_default = make_batched_aggregator(rule)
        assert bitwise_equal(
            by_default.aggregate_batch(stacks).vectors,
            by_name.aggregate_batch(stacks).vectors,
        )

    def test_primitives_accept_explicit_backend(self):
        stacks = reference_batch(seed=3)
        xp = NumpyBackend()
        assert bitwise_equal(
            batched_pairwise_sq_distances(stacks, nonfinite_as_inf=True),
            batched_pairwise_sq_distances(
                stacks, nonfinite_as_inf=True, backend=xp
            ),
        )
        assert bitwise_equal(
            pairwise_sq_distances(stacks[0], nonfinite_as_inf=True),
            pairwise_sq_distances(stacks[0], nonfinite_as_inf=True, backend=xp),
        )
        assert bitwise_equal(
            batched_krum_scores(stacks, 2),
            batched_krum_scores(stacks, 2, backend=xp),
        )
        distances = batched_pairwise_sq_distances(stacks, nonfinite_as_inf=True)
        active = np.ones(stacks.shape[:2], dtype=bool)
        active[:, -1] = False
        assert bitwise_equal(
            masked_krum_scores(distances, active, 3),
            masked_krum_scores(distances, active, 3, backend=xp),
        )
        assert bitwise_equal(
            masked_coordinate_median(stacks, active),
            masked_coordinate_median(stacks, active, backend=xp),
        )
        vectors, committees = batched_bulyan(stacks, 2)
        routed_vectors, routed_committees = batched_bulyan(
            stacks, 2, backend=xp
        )
        assert bitwise_equal(vectors, routed_vectors)
        assert bitwise_equal(committees, routed_committees)
        finite = reference_batch(seed=5)
        finite[2, -1] = 0.25  # Weiszfeld never converges on NaN rows
        assert bitwise_equal(
            batched_weiszfeld(finite),
            batched_weiszfeld(finite, backend=xp),
        )


class TestEngineThreading:
    def make_grid(self) -> ScenarioGrid:
        return ScenarioGrid(
            seeds=(0, 1),
            attacks=(("gaussian", {"sigma": 50.0}),),
            aggregators=(("krum", {}), ("geometric-median", {})),
            f_values=(2,),
            num_workers=11,
            dimension=6,
            sigma=0.3,
            num_rounds=6,
            learning_rate=0.1,
        )

    def test_run_grid_reports_resolved_backend(self):
        result = run_grid(self.make_grid(), mode="batched")
        assert result.backend == "numpy[float64]"
        loop = run_grid(self.make_grid(), mode="loop")
        assert loop.backend == "numpy[float64]"

    def test_run_grid_explicit_numpy_backend_identical(self):
        default = run_grid(self.make_grid(), mode="batched")
        explicit = run_grid(
            self.make_grid(), mode="batched", backend="numpy"
        )
        for label in default.histories:
            assert bitwise_equal(
                default.final_params[label], explicit.final_params[label]
            )

    def test_loop_mode_rejects_backend(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="loop"):
            run_grid(self.make_grid(), mode="loop", backend="numpy")


class TestDtypeAudit:
    """A reduced-precision backend is not silently up-cast (the stray
    float64-literal / ``np.empty`` audit of the redesign)."""

    def test_kernels_preserve_float32(self):
        xp = make_backend("numpy", {"dtype": "float32"})
        stacks = reference_batch(seed=11).astype(np.float32)
        for rule in NATIVE_RULES:
            if isinstance(rule, GeometricMedian):
                continue  # NaN rows never converge; covered below
            adapter = make_batched_aggregator(rule, backend=xp)
            result = adapter.aggregate_batch(stacks)
            assert np.asarray(result.vectors).dtype == np.float32, rule.name
        finite = np.asarray(
            reference_batch(seed=13), dtype=np.float32
        )
        finite[2, -1] = 0.5
        weiszfeld = make_batched_aggregator(GeometricMedian(), backend=xp)
        assert (
            np.asarray(weiszfeld.aggregate_batch(finite).vectors).dtype
            == np.float32
        )
        assert batched_pairwise_sq_distances(stacks, backend=xp).dtype == (
            np.float32
        )
        assert batched_krum_scores(stacks, 2, backend=xp).dtype == np.float32

    def test_batched_simulation_stages_in_backend_dtype(self):
        from repro.engine.runner import build_scenario_simulation

        grid = ScenarioGrid(
            seeds=(0,),
            attacks=(("gaussian", {"sigma": 10.0}),),
            aggregators=(("krum", {}),),
            f_values=(2,),
            num_workers=9,
            dimension=5,
            sigma=0.2,
            num_rounds=3,
            learning_rate=0.1,
        )
        sims = [build_scenario_simulation(s) for s in grid.scenarios()]
        batched = BatchedSimulation(
            sims, backend=make_backend("numpy", {"dtype": "float32"})
        )
        batched.run_round()
        assert batched.params.dtype == np.float32
