"""Communication graphs for decentralized (serverless) aggregation.

The paper's cluster is a star: one reliable server hears every worker.
The decentralized model replaces the star with an arbitrary
communication graph — each node disseminates its proposal to its
neighbors and aggregates only what it hears, with a *local* Byzantine
bound over its in-neighborhood.  A :class:`Topology` is the reproducible
model of that graph: a pure function ``neighbors(node, round_index)``
over a seeded structure.

Purity contract (mirroring :class:`~repro.distributed.delays.DelaySchedule`):
after :meth:`Topology.bind` fixes the node count and any randomness,
``neighbors(v, t)`` may depend only on its arguments and bind-time
state, so every executor — whatever order it queries in — sees the same
graph.  Randomized topologies therefore derive their edges from a
*counter-based* hash of the (edge, round-block) key rather than from
shared stream state (see :func:`counter_uniform`).

All built-in graphs are undirected (``u ∈ N(v) ⟺ v ∈ N(u)``) and
self-loop free; a node's own fresh proposal always participates in its
aggregation, so the self edge is implicit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "Topology",
    "CompleteTopology",
    "RingTopology",
    "KRegularTopology",
    "ErdosRenyiTopology",
    "TimeVaryingTopology",
    "counter_uniform",
]

# splitmix64 finalizer constants — a counter-based integer hash whose
# output is statistically uniform per key, computable in any order and
# fully vectorizable (no shared RNG stream state to consume).
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)
_MASK64 = (1 << 64) - 1


def counter_uniform(entropy: int, keys: np.ndarray) -> np.ndarray:
    """Uniform [0, 1) draws keyed by integer counters (splitmix64).

    ``keys`` is an integer array; each entry is hashed together with the
    bound ``entropy`` through the splitmix64 finalizer, giving one
    float64 per key.  The draw is a pure function of ``(entropy, key)``
    — the counter-based discipline randomized topologies need so the
    loop and batched executors (which query edges in different orders)
    sample identical graphs.
    """
    x = np.asarray(keys).astype(np.uint64, copy=True)
    x += np.uint64(int(entropy) & _MASK64)
    x *= _SPLITMIX_GAMMA
    x ^= x >> np.uint64(30)
    x *= _SPLITMIX_M1
    x ^= x >> np.uint64(27)
    x *= _SPLITMIX_M2
    x ^= x >> np.uint64(31)
    return x.astype(np.float64) / 2.0**64


class Topology(ABC):
    """A (possibly time-varying) communication graph over ``num_nodes``.

    Instances are configured unbound (``num_nodes=None``) by the
    registry; a simulation calls :meth:`bind` with its node count and a
    dedicated RNG stream spawned from the root seed, receiving a bound
    copy whose :meth:`neighbors` is a pure function.
    """

    #: Registry name; subclasses set this as a class attribute.
    name: str = "topology"
    num_nodes: int | None = None

    @abstractmethod
    def bind(self, num_nodes: int, rng: np.random.Generator) -> "Topology":
        """Fix the node count (and any randomness) from a simulation.

        Returns a bound copy; the receiver itself stays reusable.  The
        simulation calls this once at construction time with a stream
        spawned from the root seed, so the whole graph is reproducible
        from the cell's seed alone.
        """

    @abstractmethod
    def neighbors(self, node: int, round_index: int) -> np.ndarray:
        """Sorted ``int64`` ids adjacent to ``node`` at ``round_index``.

        Symmetric and self-loop free; pure after :meth:`bind`.
        """

    def _require_bound(self, node: int) -> int:
        """The bound node count, validating ``node`` against it."""
        if self.num_nodes is None:
            raise ConfigurationError(
                f"unbound topology {self.name!r}: pass it to a simulation "
                f"(which binds it from the root seed) or call bind() first"
            )
        if not 0 <= int(node) < self.num_nodes:
            raise ConfigurationError(
                f"node {node} outside [0, {self.num_nodes}) for topology "
                f"{self.name!r}"
            )
        return self.num_nodes

    @staticmethod
    def _check_num_nodes(num_nodes: int | None) -> int | None:
        if num_nodes is None:
            return None
        if int(num_nodes) < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {num_nodes}"
            )
        return int(num_nodes)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class CompleteTopology(Topology):
    """Every node hears every other node — the server path's graph.

    The degenerate cell of the topology axis: aggregating over the full
    in-neighborhood with the global ``f`` is exactly the paper's
    parameter server, which the differential suite pins bit for bit.
    """

    name = "complete"

    def __init__(self, num_nodes: int | None = None):
        self.num_nodes = self._check_num_nodes(num_nodes)

    def bind(self, num_nodes: int, rng: np.random.Generator) -> "CompleteTopology":
        return CompleteTopology(num_nodes=num_nodes)

    def neighbors(self, node: int, round_index: int) -> np.ndarray:
        n = self._require_bound(node)
        ids = np.arange(n, dtype=np.int64)
        return ids[ids != int(node)]


def _circulant_neighbors(
    node: int, num_nodes: int, offsets: np.ndarray
) -> np.ndarray:
    node = int(node)
    below = (node - offsets) % num_nodes
    above = (node + offsets) % num_nodes
    return np.unique(np.concatenate((below, above))).astype(np.int64)


def _check_degree(degree: int) -> int:
    degree = int(degree)
    if degree < 2 or degree % 2 != 0:
        raise ConfigurationError(
            f"degree must be an even integer >= 2 (each offset adds one "
            f"neighbor on each side), got {degree}"
        )
    return degree


class RingTopology(Topology):
    """A circulant ring: node ``v`` hears ``v ± 1, ..., v ± degree/2``.

    The canonical sparse benchmark graph — diameter ``Θ(n / degree)``,
    so consensus information needs many rounds to traverse the cluster.
    """

    name = "ring"

    def __init__(self, degree: int = 2, num_nodes: int | None = None):
        self.degree = _check_degree(degree)
        self.num_nodes = self._check_num_nodes(num_nodes)
        if self.num_nodes is not None and self.degree > self.num_nodes - 1:
            raise ConfigurationError(
                f"ring degree {self.degree} needs at least "
                f"{self.degree + 1} nodes, got {self.num_nodes}"
            )
        self._offsets = np.arange(1, self.degree // 2 + 1, dtype=np.int64)

    def bind(self, num_nodes: int, rng: np.random.Generator) -> "RingTopology":
        return RingTopology(degree=self.degree, num_nodes=num_nodes)

    def neighbors(self, node: int, round_index: int) -> np.ndarray:
        n = self._require_bound(node)
        return _circulant_neighbors(node, n, self._offsets)


class KRegularTopology(Topology):
    """A random circulant ``degree``-regular graph.

    Bind time draws ``degree / 2`` distinct offsets uniformly from
    ``{1, ..., ⌊(n − 1) / 2⌋}`` (the range where every offset contributes
    two distinct neighbors), giving a seeded k-regular graph that keeps
    the circulant symmetry — node relabeling by rotation maps the graph
    onto itself, which the permutation property tests exploit.
    """

    name = "k-regular"

    def __init__(
        self,
        degree: int = 4,
        num_nodes: int | None = None,
        offsets: tuple[int, ...] | None = None,
    ):
        self.degree = _check_degree(degree)
        self.num_nodes = self._check_num_nodes(num_nodes)
        if offsets is None:
            self._offsets: np.ndarray | None = None
        else:
            self._offsets = np.asarray(sorted(offsets), dtype=np.int64)

    def bind(self, num_nodes: int, rng: np.random.Generator) -> "KRegularTopology":
        num_nodes = int(num_nodes)
        max_offset = (num_nodes - 1) // 2
        wanted = self.degree // 2
        if wanted > max_offset:
            raise ConfigurationError(
                f"k-regular degree {self.degree} needs at least "
                f"{2 * wanted + 1} nodes, got {num_nodes}"
            )
        pool = np.arange(1, max_offset + 1, dtype=np.int64)
        offsets = rng.permutation(pool)[:wanted]
        return KRegularTopology(
            degree=self.degree,
            num_nodes=num_nodes,
            offsets=tuple(int(o) for o in offsets),
        )

    def neighbors(self, node: int, round_index: int) -> np.ndarray:
        n = self._require_bound(node)
        if self._offsets is None:
            raise ConfigurationError(
                "unbound k-regular topology: call bind() first"
            )
        return _circulant_neighbors(node, n, self._offsets)


class ErdosRenyiTopology(Topology):
    """G(n, p): each undirected edge present independently w.p. ``edge_prob``.

    Edges are sampled counter-based — :func:`counter_uniform` keyed on
    the bound entropy and the unordered pair id ``min·n + max`` — so the
    graph is symmetric by construction, pure after bind, and a node's
    whole neighborhood resolves in one vectorized pass.
    """

    name = "erdos-renyi"

    def __init__(
        self,
        edge_prob: float = 0.5,
        num_nodes: int | None = None,
        entropy: int | None = None,
    ):
        if not 0.0 <= float(edge_prob) <= 1.0:
            raise ConfigurationError(
                f"edge_prob must be in [0, 1], got {edge_prob}"
            )
        self.edge_prob = float(edge_prob)
        self.num_nodes = self._check_num_nodes(num_nodes)
        self.entropy = None if entropy is None else int(entropy)

    def bind(
        self, num_nodes: int, rng: np.random.Generator
    ) -> "ErdosRenyiTopology":
        return ErdosRenyiTopology(
            edge_prob=self.edge_prob,
            num_nodes=num_nodes,
            entropy=int(rng.integers(0, 2**63)),
        )

    def _pair_keys(self, node: int, n: int) -> tuple[np.ndarray, np.ndarray]:
        others = np.arange(n, dtype=np.int64)
        others = others[others != int(node)]
        lo = np.minimum(others, int(node)).astype(np.uint64)
        hi = np.maximum(others, int(node)).astype(np.uint64)
        return others, lo * np.uint64(n) + hi

    def neighbors(self, node: int, round_index: int) -> np.ndarray:
        n = self._require_bound(node)
        if self.entropy is None:
            raise ConfigurationError(
                "unbound erdos-renyi topology: call bind() first"
            )
        others, keys = self._pair_keys(node, n)
        return others[counter_uniform(self.entropy, keys) < self.edge_prob]


class TimeVaryingTopology(ErdosRenyiTopology):
    """An Erdős–Rényi graph resampled every ``rewire_period`` rounds.

    Rounds sharing a block ``t // rewire_period`` share a graph; the
    block index is folded into the counter-based edge key, so the whole
    evolving sequence stays a pure function of the bind-time entropy.
    """

    name = "time-varying"

    def __init__(
        self,
        edge_prob: float = 0.5,
        rewire_period: int = 1,
        num_nodes: int | None = None,
        entropy: int | None = None,
    ):
        if int(rewire_period) < 1:
            raise ConfigurationError(
                f"rewire_period must be >= 1, got {rewire_period}"
            )
        super().__init__(
            edge_prob=edge_prob, num_nodes=num_nodes, entropy=entropy
        )
        self.rewire_period = int(rewire_period)

    def bind(
        self, num_nodes: int, rng: np.random.Generator
    ) -> "TimeVaryingTopology":
        return TimeVaryingTopology(
            edge_prob=self.edge_prob,
            rewire_period=self.rewire_period,
            num_nodes=num_nodes,
            entropy=int(rng.integers(0, 2**63)),
        )

    def neighbors(self, node: int, round_index: int) -> np.ndarray:
        n = self._require_bound(node)
        if self.entropy is None:
            raise ConfigurationError(
                "unbound time-varying topology: call bind() first"
            )
        block = int(round_index) // self.rewire_period
        others, keys = self._pair_keys(node, n)
        # Fold the round block into the per-edge counter so each block
        # samples a fresh graph from the same bound entropy.
        block_entropy = (self.entropy + block * int(_SPLITMIX_GAMMA)) & _MASK64
        return others[counter_uniform(block_entropy, keys) < self.edge_prob]
