"""Momentum wrapper around any gradient estimator (worker-side).

Production workers rarely send raw mini-batch gradients; classical
heavy-ball momentum ``v_t = β v_{t-1} + G(x_t, ξ)`` smooths them.  The
wrapper matters for the Byzantine analysis in two ways: it *reduces* the
effective σ seen by the server (momentum averages ~1/(1−β) past batches),
but it makes the estimator stateful and slightly *biased* during
transients, technically leaving Proposition 4.3's i.i.d. assumptions.
The momentum ablations quantify that trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gradients.base import GradientEstimator

__all__ = ["MomentumEstimator"]


class MomentumEstimator(GradientEstimator):
    """Heavy-ball momentum over a base estimator.

    ``correct_bias=True`` divides by ``1 − β^t`` (Adam-style) so early
    estimates are not systematically shrunk toward zero.
    """

    def __init__(
        self,
        base: GradientEstimator,
        *,
        beta: float = 0.9,
        correct_bias: bool = True,
    ):
        if not 0.0 <= beta < 1.0:
            raise ConfigurationError(f"beta must be in [0, 1), got {beta}")
        self.base = base
        self.beta = float(beta)
        self.correct_bias = bool(correct_bias)
        self._velocity: np.ndarray | None = None
        self._steps = 0

    @property
    def dimension(self) -> int:
        return self.base.dimension

    def estimate(self, params: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        gradient = self.base.estimate(params, rng)
        if self._velocity is None:
            self._velocity = np.zeros_like(gradient)
        self._velocity = self.beta * self._velocity + (1.0 - self.beta) * gradient
        self._steps += 1
        if not self.correct_bias:
            return self._velocity.copy()
        correction = 1.0 - self.beta**self._steps
        return self._velocity / correction

    def expected(self, params: np.ndarray) -> np.ndarray:
        # The stationary mean of the EMA is the base estimator's mean.
        return self.base.expected(params)

    def reset(self) -> None:
        """Clear the velocity (call between independent runs)."""
        self._velocity = None
        self._steps = 0
