"""Bulyan — the authors' follow-up defense (extension feature).

El Mhamdi, Guerraoui, Rouault, *The Hidden Vulnerability of Distributed
Learning in Byzantium* (ICML 2018) showed that in high dimension a
Byzantine worker can stay within the honest cloud on most coordinates
while planting a large error on a few (the leeway the little-is-enough
attack exploits), and proposed **Bulyan**: run a Byzantine-resilient
selection rule (Krum) repeatedly to build a committee, then take a
per-coordinate trimmed average over the committee.

Bulyan requires ``n >= 4f + 3``: the committee has ``θ = n − 2f``
members, and each output coordinate averages the ``β = θ − 2f`` values
closest to the coordinate median.

Included as the paper's natural "future work" extension; the ablation
benches contrast it with Krum under the post-2017 stealth attacks.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import AggregationResult, Aggregator
from repro.core.krum import krum_scores
from repro.exceptions import ByzantineToleranceError
from repro.utils.validation import check_positive_int

__all__ = ["Bulyan"]


class Bulyan(Aggregator):
    """Krum-committee selection followed by a coordinate trimmed mean."""

    def __init__(self, f: int):
        self.f = check_positive_int(f, "f", minimum=0)
        self.name = f"bulyan(f={self.f})"

    def check_tolerance(self, num_workers: int) -> None:
        if num_workers < 4 * self.f + 3:
            raise ByzantineToleranceError(
                f"Bulyan requires n >= 4f + 3; got n={num_workers}, "
                f"f={self.f} (need n >= {4 * self.f + 3})",
                n=num_workers,
                f=self.f,
            )

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        n = vectors.shape[0]
        committee_size = n - 2 * self.f

        # Selection phase: repeatedly pick the Krum winner among the
        # remaining proposals and move it to the committee.
        remaining = list(range(n))
        committee: list[int] = []
        for _ in range(committee_size):
            pool = vectors[remaining]
            if len(remaining) - self.f - 2 >= 1:
                scores = krum_scores(pool, self.f)
            else:
                # Too few proposals left for Krum scoring (reachable only
                # near the tolerance boundary); rank by distance to the
                # pool's coordinate-wise median, which a minority cannot
                # drag.  Any Byzantine slipping into the committee here is
                # neutralized by the trimmed aggregation phase below.
                median = np.median(pool, axis=0)
                scores = np.linalg.norm(pool - median, axis=1)
            winner_local = int(np.argmin(scores))
            committee.append(remaining.pop(winner_local))

        committee_array = np.asarray(sorted(committee), dtype=np.int64)
        selected = vectors[committee_array]

        # Aggregation phase: per coordinate, average the β = θ − 2f
        # values closest to the median.
        beta = max(committee_size - 2 * self.f, 1)
        medians = np.median(selected, axis=0)
        deviation_order = np.argsort(
            np.abs(selected - medians[None, :]), axis=0, kind="stable"
        )
        closest = deviation_order[:beta]
        gathered = np.take_along_axis(selected, closest, axis=0)
        return AggregationResult(
            vector=gathered.mean(axis=0), selected=committee_array
        )
