"""Tournament bench — the attack × defense robustness league.

Runs every registered attack against every registered defense over the
tournament slate (seeds × quadratic workload × {synchronous, bounded
staleness with a periodic delay}) and writes the league table to
``BENCH_tournament.json`` — one row per (attack, defense) pairing, with
final error, error ratio against the defense's attack-free baseline,
rounds-to-threshold and a breakdown flag.  The league is the repo's
robustness scoreboard: a new attack faces every defense, a new defense
every attack, and no pairing is silently omitted (pairings that raise
are recorded as breakdown rows with the exception taxonomy name).

Two claims are asserted alongside the measurement:

* **coverage** — the league contains exactly one row per registered
  attack × registered defense pairing;
* **adaptive headline** — the staleness-gaming attacker (which
  pre-amplifies by the inverse dampening factor ``1/Λ(τ)``) degrades
  plain averaging on the asynchronous slate, while the Kardam-wrapped
  variant of the same rule (dampening + empirical-Lipschitz filter)
  recovers: the amplified proposals ride straight into the unfiltered
  mean but are dampened back and rate-filtered by the wrapper.

The payload is deterministic for a fixed configuration (no wall times),
so a same-seed rerun reproduces ``BENCH_tournament.json`` byte for byte
— ``tests/tournament/test_tournament.py`` pins that.

Standalone usage (CI smoke / regenerating the JSON)::

    PYTHONPATH=src python benchmarks/bench_tournament.py          # full slate
    PYTHONPATH=src python benchmarks/bench_tournament.py --smoke  # small slate
    PYTHONPATH=src python benchmarks/bench_tournament.py --smoke \\
        --output BENCH_tournament.smoke.json   # CI artifact
    PYTHONPATH=src python benchmarks/bench_tournament.py --smoke \\
        --workload logistic-spambase           # league on a dataset task

``--workload`` swaps the league's slate workload (the degrade/recover
headline always runs on the quadratic bowl, where its thresholds were
measured); ``BENCH_tournament.json`` is only (re)written by the default
quadratic full-slate run, so alternate workloads never perturb the
byte-pinned payload.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.reporting import format_league_table, format_table
from repro.tournament import AsyncCell, TournamentRunner

try:
    from benchmarks.conftest import emit, run_once
except ImportError:  # executed as a script: python benchmarks/bench_tournament.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit, run_once

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_tournament.json"

# League slate workloads, selectable via --workload.  The dataset league
# is sized down (spambase defaults are 512/256 examples) so the full
# attack x defense product stays tractable as a CI smoke leg.
WORKLOAD_CHOICES = {
    "quadratic": (("quadratic", {"dimension": 20, "sigma": 0.5}),),
    "logistic-spambase": (
        (
            "logistic-spambase",
            {"num_train": 128, "num_eval": 64, "batch_size": 16},
        ),
    ),
}
WORKLOADS = WORKLOAD_CHOICES["quadratic"]
SYNC_CELL = AsyncCell()
ASYNC_CELL = AsyncCell(
    max_staleness=3,
    delay_schedule="periodic",
    delay_kwargs={"tau": 3, "period": 2},
)

# Headline thresholds: on the asynchronous slate the staleness-gaming
# attacker must leave plain averaging at least DEGRADE_MIN × its
# attack-free baseline while kardam(average) with the Lipschitz filter
# stays within RECOVER_MAX ×.  Measured: ~19x degraded vs ~1.5x
# recovered at the full slate; the margins absorb slate noise.
DEGRADE_MIN = 4.0
RECOVER_MAX = 2.5
UNFILTERED_RULE = ("average", {})
FILTERED_RULE = ("kardam", {"inner": "average", "lipschitz_quantile": 0.9})


def _league_runner(
    *, seeds=(0, 1), num_rounds=40, workloads=WORKLOADS
) -> TournamentRunner:
    """The full-product league: every registered attack × defense."""
    return TournamentRunner(
        seeds=seeds,
        num_rounds=num_rounds,
        eval_every=5,
        workloads=workloads,
        async_cells=(SYNC_CELL, ASYNC_CELL),
    )


def _headline_runner() -> TournamentRunner:
    """The focused degrade/recover comparison: staleness-gaming against
    the unfiltered rule and its kardam-wrapped variant, asynchronous
    slate only (the dampening game needs staleness to play with).
    Small enough to run at full fidelity even in smoke mode."""
    return TournamentRunner(
        attacks=(("staleness-gaming", {}),),
        defenses=(UNFILTERED_RULE, FILTERED_RULE),
        seeds=(0, 1),
        num_rounds=40,
        eval_every=5,
        workloads=WORKLOADS,
        async_cells=(ASYNC_CELL,),
    )


def run_tournament(runner: TournamentRunner) -> dict:
    result = runner.run()
    headline = _headline_runner().run()
    degraded = headline.row("staleness-gaming", UNFILTERED_RULE[0])
    recovered = headline.row("staleness-gaming", FILTERED_RULE[0])
    payload = result.to_payload()
    payload["coverage"] = {
        "pairs_expected": len(result.attacks) * len(result.defenses),
        "pairs_present": len(result.rows),
        "full_product": result.covers_product(),
    }
    payload["headline"] = {
        "attack": "staleness-gaming",
        "async_cell": ASYNC_CELL.label,
        "unfiltered_rule": UNFILTERED_RULE[0],
        "filtered_rule": f"kardam({FILTERED_RULE[1]['inner']})",
        "unfiltered_ratio": degraded.error_ratio,
        "filtered_ratio": recovered.error_ratio,
        "degrade_min": DEGRADE_MIN,
        "recover_max": RECOVER_MAX,
    }
    payload["_result"] = result  # stripped before serialization
    return payload


def _serializable(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if not k.startswith("_")}


def _emit_summary(payload: dict) -> None:
    coverage = payload["coverage"]
    headline = payload["headline"]
    emit(
        format_table(
            [
                "pairs", "full product", "rounds", "seeds",
                "unfiltered ratio", "kardam ratio",
            ],
            [
                [
                    coverage["pairs_present"],
                    coverage["full_product"],
                    payload["tournament"]["num_rounds"],
                    len(payload["tournament"]["seeds"]),
                    f"{headline['unfiltered_ratio']:.2f}x",
                    f"{headline['filtered_ratio']:.2f}x",
                ]
            ],
            title="Tournament — attack x defense league",
        )
    )
    emit(format_league_table(payload["_result"], title="Robustness league"))


def _check(payload: dict) -> list[str]:
    failures = []
    coverage = payload["coverage"]
    if not coverage["full_product"]:
        failures.append(
            f"league covers {coverage['pairs_present']} pairings, expected "
            f"the full {coverage['pairs_expected']}-pair attack x defense "
            f"product with no omissions"
        )
    headline = payload["headline"]
    unfiltered = headline["unfiltered_ratio"]
    filtered = headline["filtered_ratio"]
    if unfiltered is None or unfiltered < DEGRADE_MIN:
        failures.append(
            f"staleness-gaming should degrade unfiltered "
            f"{headline['unfiltered_rule']} to >= {DEGRADE_MIN}x its "
            f"baseline on the async slate, got {unfiltered}"
        )
    if filtered is None or filtered > RECOVER_MAX:
        failures.append(
            f"{headline['filtered_rule']} should recover to <= "
            f"{RECOVER_MAX}x baseline under staleness-gaming, got {filtered}"
        )
    if (
        unfiltered is not None
        and filtered is not None
        and filtered >= unfiltered
    ):
        failures.append(
            f"the kardam-wrapped rule ({filtered}x) should beat the "
            f"unfiltered rule ({unfiltered}x) under staleness-gaming"
        )
    breakdown_rows = [
        row for row in payload["league"] if row["breakdown"]
    ]
    for row in breakdown_rows:
        if row["breakdown_reason"] is None:
            failures.append(
                f"breakdown row ({row['attack']}, {row['defense']}) "
                f"carries no reason"
            )
    return failures


def bench_tournament_league(benchmark):
    payload = run_once(benchmark, lambda: run_tournament(_league_runner()))
    _emit_summary(payload)
    RESULT_PATH.write_text(
        json.dumps(_serializable(payload), indent=1) + "\n"
    )
    for failure in _check(payload):
        raise AssertionError(failure)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the league on a small slate (1 seed, 10 rounds) without "
        "writing BENCH_tournament.json — the CI sanity check (the "
        "degrade/recover headline always runs at full fidelity; it is "
        "cheap)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the summary JSON to this path (used by CI to "
        "upload the smoke measurement as a workflow artifact)",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOAD_CHOICES),
        default="quadratic",
        help="workload the league slate runs on (the degrade/recover "
        "headline always runs on the quadratic bowl, where its "
        "thresholds were measured); only the default quadratic "
        "full-slate run rewrites BENCH_tournament.json",
    )
    args = parser.parse_args(argv)

    workloads = WORKLOAD_CHOICES[args.workload]
    if args.smoke:
        runner = _league_runner(
            seeds=(0,), num_rounds=10, workloads=workloads
        )
    else:
        runner = _league_runner(workloads=workloads)
    payload = run_tournament(runner)
    _emit_summary(payload)
    print(json.dumps(_serializable(payload), indent=1))
    if args.output is not None:
        args.output.write_text(
            json.dumps(_serializable(payload), indent=1) + "\n"
        )
        print(f"wrote {args.output}")
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if not args.smoke and args.workload == "quadratic":
        RESULT_PATH.write_text(
            json.dumps(_serializable(payload), indent=1) + "\n"
        )
        print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
