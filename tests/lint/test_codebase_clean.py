"""The gate: the shipped library must satisfy its own invariants.

This is the acceptance criterion for the linter — ``repro.lint`` with
every registered rule runs over all of ``src/repro`` and must report
zero findings.  A failure here means either a real invariant violation
slipped in (fix the code) or a rule regressed (fix the rule); the
assertion message prints the rendered findings so CI logs show which.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint import lint_paths

PACKAGE_ROOT = Path(repro.__file__).parent


def test_library_has_zero_findings():
    report = lint_paths([PACKAGE_ROOT])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == (), f"repro-lint findings in src:\n{rendered}"


def test_gate_actually_scanned_the_library():
    # Guard the gate itself: if package discovery broke (moved tree,
    # empty glob), the zero-findings assertion would pass vacuously.
    report = lint_paths([PACKAGE_ROOT])
    assert report.files_checked >= 90
    assert "backend-purity" in report.rule_names
    assert "rng-discipline" in report.rule_names
    assert "error-taxonomy" in report.rule_names
    assert "stateful-attack-declaration" in report.rule_names
    assert "registry-factory-contract" in report.rule_names
