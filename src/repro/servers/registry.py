"""Name-based server-attack factory — the tier's seventh registry.

Mirrors :mod:`repro.attacks.registry` for server-side broadcast
corruption: a scenario names a strategy ("sign-flip-broadcast",
"stale-replay-broadcast", ...) plus keyword arguments, and the registry
builds the :class:`~repro.servers.attacks.ServerAttack`, with the shared
:class:`ConfigurationError` contract — an unknown name or keyword
arguments that do not fit the factory's signature raise a readable error
naming the attack and the parameters it accepts.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.exceptions import ConfigurationError
from repro.servers.attacks import ServerAttack
from repro.utils.validation import check_factory_kwargs

__all__ = [
    "register_server_attack",
    "available_server_attacks",
    "server_attack_factory",
    "make_server_attack",
]

_REGISTRY: dict[str, Callable[..., ServerAttack]] = {}


def register_server_attack(
    name: str, factory: Callable[..., ServerAttack]
) -> None:
    """Register a strategy under ``name``; later registrations override."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"server attack name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def available_server_attacks() -> list[str]:
    """Sorted list of registered strategy names."""
    return sorted(_REGISTRY)


def server_attack_factory(name: str) -> Callable[..., ServerAttack]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown server attack {name!r}; available: "
            f"{available_server_attacks()}"
        )
    return _REGISTRY[name]


def make_server_attack(
    name: str | None, kwargs: Mapping[str, object] | None = None
) -> ServerAttack | None:
    """Build a strategy by name, e.g.
    ``make_server_attack("sign-flip-broadcast", {"scale": 2.0})``.

    ``name=None`` returns ``None`` (the attack-free tier), so callers
    can thread an optional spec straight through.  Keyword arguments
    that do not fit the factory's signature raise
    :class:`ConfigurationError` naming the attack and the parameters it
    accepts — the shared registry contract.
    """
    if name is None:
        if kwargs:
            raise ConfigurationError(
                f"server-attack kwargs {dict(kwargs)!r} were given without "
                f"a server attack name"
            )
        return None
    factory = server_attack_factory(name)
    resolved = dict(kwargs or {})
    check_factory_kwargs("server attack", name, factory, resolved)
    return factory(**resolved)


def _register_builtins() -> None:
    from repro.servers.attacks import (
        RandomNoiseBroadcastAttack,
        SignFlipBroadcastAttack,
        StaleReplayBroadcastAttack,
    )

    register_server_attack("sign-flip-broadcast", SignFlipBroadcastAttack)
    register_server_attack("stale-replay-broadcast", StaleReplayBroadcastAttack)
    register_server_attack("random-noise-broadcast", RandomNoiseBroadcastAttack)


_register_builtins()
