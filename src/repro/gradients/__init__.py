"""Gradient estimators — the ``G(x, ξ)`` of the paper's model section.

A correct worker computes ``V = G(x, ξ)`` with ``E G(x, ξ) = ∇Q(x)``.
Two realizations are provided:

* :class:`GaussianOracleEstimator` — the analytical setting used in the
  resilience experiments: ``G(x, ξ) = ∇Q(x) + ξ`` with ``ξ ~ N(0, σ²I)``,
  so ``E‖G − g‖² = d·σ²`` exactly as in Proposition 4.2.
* :class:`MinibatchEstimator` — the machine-learning setting: the gradient
  of a model's loss on a mini-batch drawn uniformly from the worker's
  data shard.
"""

from repro.gradients.base import GradientEstimator
from repro.gradients.minibatch import MinibatchEstimator
from repro.gradients.momentum import MomentumEstimator
from repro.gradients.oracle import GaussianOracleEstimator

__all__ = [
    "GradientEstimator",
    "GaussianOracleEstimator",
    "MinibatchEstimator",
    "MomentumEstimator",
]
