"""Reproducible random-number-generator management.

The paper's model assumes correct workers draw i.i.d. samples; in the
simulator this is realized by giving every worker an *independent* RNG
stream spawned from a single root seed.  ``numpy``'s ``SeedSequence``
spawning guarantees streams are statistically independent while the whole
experiment stays reproducible from one integer seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["as_generator", "spawn_generators"]

SeedLike = int | np.random.SeedSequence | np.random.Generator | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts an integer seed, a ``SeedSequence``, an existing ``Generator``
    (returned unchanged) or ``None`` (fresh OS-entropy generator).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from one seed.

    The streams are independent in the ``SeedSequence.spawn`` sense: no
    two of them share state, and the full list is reproducible from the
    root seed.  Spawning is *sequential*: the first k children of
    ``spawn_generators(seed, n)`` are identical for every n >= k, so
    consumers may grow their stream count without perturbing existing
    streams.

    Every ``SeedLike`` alternative is supported: an int, a
    ``SeedSequence``, ``None`` (fresh OS entropy), or an existing
    ``Generator`` — children then spawn from the generator's own seed
    sequence (``Generator.spawn`` where numpy provides it, its bit
    generator's ``seed_seq`` otherwise).  Anything else raises
    :class:`ConfigurationError` naming the accepted types instead of
    leaking ``SeedSequence``'s raw ``TypeError``.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        if hasattr(seed, "spawn"):  # numpy >= 1.25
            return list(seed.spawn(count))
        root = seed.bit_generator.seed_seq
        if not isinstance(root, np.random.SeedSequence):
            raise ConfigurationError(
                f"cannot spawn from a Generator whose bit generator was "
                f"seeded without a SeedSequence "
                f"(got {type(root).__name__}); seed it from an int or "
                f"SeedSequence instead"
            )
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    elif seed is None or isinstance(seed, (int, np.integer)):
        root = np.random.SeedSequence(seed)
    else:
        raise ConfigurationError(
            f"seed must be an int, numpy SeedSequence, numpy Generator or "
            f"None, got {type(seed).__name__}"
        )
    return [np.random.default_rng(child) for child in root.spawn(count)]
