"""Gradient-checked tests for every loss."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.nn.losses import (
    BinaryCrossEntropyWithLogits,
    MeanSquaredError,
    SoftmaxCrossEntropy,
)
from tests.helpers import assert_gradients_close, numerical_gradient


class TestMeanSquaredError:
    def test_known_value(self):
        loss = MeanSquaredError()
        value = loss.forward(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert value == pytest.approx(2.5)  # 0.5 * (1 + 4) / 1

    def test_gradient_matches_numeric(self, rng):
        loss = MeanSquaredError()
        preds = rng.standard_normal((4, 3))
        targets = rng.standard_normal((4, 3))
        loss.forward(preds, targets)
        analytic = loss.backward()
        numeric = numerical_gradient(
            lambda p: loss.forward(p, targets), preds.copy()
        )
        assert_gradients_close(analytic, numeric, rtol=1e-5)

    def test_zero_at_perfect_prediction(self, rng):
        loss = MeanSquaredError()
        preds = rng.standard_normal((3, 2))
        assert loss.forward(preds, preds) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            MeanSquaredError().forward(np.ones((2, 2)), np.ones((2, 3)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MeanSquaredError().backward()


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((5, 4)), np.array([0, 1, 2, 3, 0]))
        assert value == pytest.approx(np.log(4.0))

    def test_gradient_matches_numeric(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((6, 5))
        targets = rng.integers(0, 5, size=6)
        loss.forward(logits, targets)
        analytic = loss.backward()
        numeric = numerical_gradient(
            lambda z: loss.forward(z, targets), logits.copy()
        )
        assert_gradients_close(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((4, 3))
        loss.forward(logits, np.array([0, 1, 2, 0]))
        np.testing.assert_allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_stable_for_large_logits(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.array([[1000.0, 0.0]]), np.array([0]))
        assert np.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-10)

    def test_probabilities_available(self, rng):
        loss = SoftmaxCrossEntropy()
        loss.forward(rng.standard_normal((3, 4)), np.array([0, 1, 2]))
        probs = loss.last_probabilities
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(DimensionMismatchError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_rejects_wrong_target_shape(self):
        with pytest.raises(DimensionMismatchError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.zeros((2, 3)))


class TestBinaryCrossEntropyWithLogits:
    def test_known_value(self):
        loss = BinaryCrossEntropyWithLogits()
        value = loss.forward(np.array([0.0]), np.array([1.0]))
        assert value == pytest.approx(np.log(2.0))

    def test_gradient_matches_numeric(self, rng):
        loss = BinaryCrossEntropyWithLogits()
        logits = rng.standard_normal(8)
        targets = rng.integers(0, 2, size=8).astype(float)
        loss.forward(logits, targets)
        analytic = loss.backward()
        numeric = numerical_gradient(
            lambda z: loss.forward(z, targets), logits.copy()
        )
        assert_gradients_close(analytic, numeric, rtol=1e-5)

    def test_stable_for_extreme_logits(self):
        loss = BinaryCrossEntropyWithLogits()
        value = loss.forward(np.array([800.0, -800.0]), np.array([1.0, 0.0]))
        assert np.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-10)

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            BinaryCrossEntropyWithLogits().forward(np.ones(3), np.ones(4))
