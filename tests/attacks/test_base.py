"""Tests for the attack framework."""

import numpy as np
import pytest

from repro.attacks.base import AttackContext, BenignAttack
from repro.exceptions import ConfigurationError, DimensionMismatchError


def make_context(rng, *, num_honest=8, num_byzantine=2, dimension=4, **overrides):
    honest = 1.0 + 0.1 * rng.standard_normal((num_honest, dimension))
    n = num_honest + num_byzantine
    defaults = dict(
        round_index=0,
        params=np.zeros(dimension),
        honest_gradients=honest,
        byzantine_indices=np.arange(num_honest, n),
        honest_indices=np.arange(num_honest),
        num_workers=n,
        rng=rng,
    )
    defaults.update(overrides)
    return AttackContext(**defaults)


class TestAttackContext:
    def test_properties(self, rng):
        ctx = make_context(rng)
        assert ctx.num_byzantine == 2
        assert ctx.dimension == 4
        np.testing.assert_allclose(
            ctx.honest_mean, ctx.honest_gradients.mean(axis=0)
        )

    def test_validate_accepts_consistent(self, rng):
        make_context(rng).validate()

    def test_validate_rejects_overlap(self, rng):
        ctx = make_context(rng, byzantine_indices=np.array([0, 8]))
        with pytest.raises(ConfigurationError, match="both honest and Byzantine"):
            ctx.validate()

    def test_validate_rejects_count_mismatch(self, rng):
        ctx = make_context(rng, num_workers=11)
        with pytest.raises(ConfigurationError):
            ctx.validate()

    def test_validate_rejects_bad_gradient_shape(self, rng):
        ctx = make_context(rng, honest_gradients=np.zeros(4))
        with pytest.raises(DimensionMismatchError):
            ctx.validate()


class TestBenignAttack:
    def test_shape(self, rng):
        ctx = make_context(rng, num_byzantine=3)
        out = BenignAttack().craft(ctx)
        assert out.shape == (3, 4)

    def test_statistically_close_to_honest(self, rng):
        ctx = make_context(rng, num_honest=50, num_byzantine=20)
        out = BenignAttack().craft(ctx)
        honest_mean = ctx.honest_mean
        assert np.linalg.norm(out.mean(axis=0) - honest_mean) < 0.5
