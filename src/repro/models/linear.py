"""Linear least-squares regression."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.models.base import Model

__all__ = ["LinearRegressionModel"]


class LinearRegressionModel(Model):
    """``Q(w, b) = (1/2B) Σ (xᵀw + b − y)² + (λ/2)‖w‖²``.

    Convex with a closed-form optimum, which the tests use to validate
    both the gradient and end-to-end SGD convergence.
    """

    def __init__(self, num_features: int, *, l2: float = 0.0, fit_bias: bool = True):
        if num_features < 1:
            raise ConfigurationError(f"num_features must be >= 1, got {num_features}")
        if l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {l2}")
        self.num_features = int(num_features)
        self.l2 = float(l2)
        self.fit_bias = bool(fit_bias)

    @property
    def dimension(self) -> int:
        return self.num_features + (1 if self.fit_bias else 0)

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, 0.1, size=self.dimension)

    def _split(self, params: np.ndarray) -> tuple[np.ndarray, float]:
        params = np.asarray(params, dtype=np.float64)
        if params.shape != (self.dimension,):
            raise DimensionMismatchError(
                f"params must have shape ({self.dimension},), got {params.shape}"
            )
        if self.fit_bias:
            return params[:-1], float(params[-1])
        return params, 0.0

    def predict_values(self, params: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Real-valued predictions ``X w + b``."""
        weights, bias = self._split(params)
        return np.asarray(inputs, dtype=np.float64) @ weights + bias

    def loss(self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray) -> float:
        weights, _bias = self._split(params)
        residuals = self.predict_values(params, inputs) - np.asarray(
            targets, dtype=np.float64
        )
        data_term = 0.5 * np.mean(residuals**2)
        return float(data_term + 0.5 * self.l2 * weights @ weights)

    def gradient(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        weights, _bias = self._split(params)
        inputs = np.asarray(inputs, dtype=np.float64)
        residuals = self.predict_values(params, inputs) - np.asarray(
            targets, dtype=np.float64
        )
        batch = len(inputs)
        grad_w = inputs.T @ residuals / batch + self.l2 * weights
        if not self.fit_bias:
            return grad_w
        grad_b = residuals.mean()
        return np.concatenate([grad_w, [grad_b]])

    def closed_form_optimum(self, inputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Ridge/OLS solution on the full dataset (for test oracles)."""
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        design = (
            np.hstack([inputs, np.ones((len(inputs), 1))]) if self.fit_bias else inputs
        )
        gram = design.T @ design / len(design)
        reg = self.l2 * np.eye(design.shape[1])
        if self.fit_bias:
            reg[-1, -1] = 0.0  # bias is conventionally unregularized
        return np.linalg.solve(gram + reg, design.T @ targets / len(design))
