"""Whole-program rules against fixture projects.

Each project rule gets a miniature project tree (written to ``tmp_path``
and linted via :func:`lint_paths`, exactly the CLI code path) in a
*good* shape that must produce zero findings and *bad* shapes that must
each produce at least one — the anti-vacuity guard the self-clean gate
relies on: a rule whose bad fixture stops firing has regressed, even if
``src/`` still lints clean.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.lint import ModuleContext, build_project_context, lint_paths
from repro.lint.rules.rng_stream_order import RngStreamOrderRule


def make_project(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write a fixture project (with a root marker) under ``tmp_path``."""
    root = tmp_path / "proj"
    root.mkdir(exist_ok=True)
    (root / "pyproject.toml").write_text('[project]\nname = "fixture"\n')
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return root


def run(root: Path, rule: str):
    return lint_paths([root / "src"], select=[rule]).findings


# -- registry-drift ----------------------------------------------------

REGISTRY_MODULE = """
    def register_aggregator(name, factory):
        pass

    def available_aggregators():
        return ["krum", "median"]

    def make_aggregator(name):
        return name

    class Krum:
        name = "krum"

    register_aggregator(Krum.name, Krum)
    register_aggregator("median", object)
"""

SWEEP_TEST = """
    from pkg.registry import available_aggregators

    def test_sweep():
        for name in available_aggregators():
            assert isinstance(name, str)
"""

README_TABLE = (
    "# Fixture\n\n"
    "| Registry name | What |\n"
    "|---------------|------|\n"
    "| `krum`        | a    |\n"
    "| `median`      | b    |\n"
)

REGISTRY_FILES = {
    "src/pkg/__init__.py": "",
    "src/pkg/registry.py": REGISTRY_MODULE,
    "tests/test_contract.py": SWEEP_TEST,
    "README.md": README_TABLE,
}


class TestRegistryDrift:
    def test_synced_project_is_clean(self, tmp_path):
        root = make_project(tmp_path, REGISTRY_FILES)
        assert run(root, "registry-drift") == ()

    def test_mutated_fixture_loses_sweep_coverage(self, tmp_path):
        # The liveness check for the rule itself: drop the
        # available_aggregators() call from the contract test and the
        # registered names become unreachable from the sweep.
        files = dict(REGISTRY_FILES)
        files["tests/test_contract.py"] = """
            def test_unrelated():
                assert True
        """
        root = make_project(tmp_path, files)
        findings = run(root, "registry-drift")
        assert len(findings) == 1
        assert "not swept by any contract test" in findings[0].message
        assert "available_aggregators" in findings[0].message

    def test_readme_row_for_unregistered_name(self, tmp_path):
        files = dict(REGISTRY_FILES)
        files["README.md"] = README_TABLE + "| `zapp`        | c    |\n"
        root = make_project(tmp_path, files)
        findings = run(root, "registry-drift")
        assert len(findings) == 1
        assert "'zapp'" in findings[0].message
        assert findings[0].path.endswith("README.md")

    def test_registered_name_missing_from_readme(self, tmp_path):
        files = dict(REGISTRY_FILES)
        files["README.md"] = README_TABLE.replace(
            "| `median`      | b    |\n", ""
        )
        root = make_project(tmp_path, files)
        findings = run(root, "registry-drift")
        assert len(findings) == 1
        assert "'median'" in findings[0].message
        assert "missing from the README" in findings[0].message

    def test_make_call_with_unregistered_literal(self, tmp_path):
        files = dict(REGISTRY_FILES)
        files["src/pkg/use.py"] = """
            from pkg.registry import make_aggregator

            def build():
                return make_aggregator("kurm")
        """
        root = make_project(tmp_path, files)
        findings = run(root, "registry-drift")
        assert len(findings) == 1
        assert "'kurm'" in findings[0].message
        assert "unregistered" in findings[0].message

    def test_hardcoded_cli_strings_flag_unlisted_names(self, tmp_path):
        files = dict(REGISTRY_FILES)
        files["src/pkg/cli.py"] = """
            def main(argv):
                if argv[0] == "krum":
                    return 1
                return 0
        """
        root = make_project(tmp_path, files)
        findings = run(root, "registry-drift")
        assert len(findings) == 1
        assert "'median'" in findings[0].message
        assert "choice source" in findings[0].message

    def test_dynamic_cli_is_clean(self, tmp_path):
        files = dict(REGISTRY_FILES)
        files["src/pkg/cli.py"] = """
            from pkg.registry import available_aggregators

            def main(argv):
                return argv[0] in available_aggregators()
        """
        root = make_project(tmp_path, files)
        assert run(root, "registry-drift") == ()

    def test_classname_dot_name_registration_resolves(self, tmp_path):
        # Krum is registered via ``Krum.name``; if attribute resolution
        # broke, 'krum' would vanish from the registry and the README
        # row for it would read as unknown.
        root = make_project(tmp_path, REGISTRY_FILES)
        findings = run(root, "registry-drift")
        assert not any("krum" in f.message for f in findings)


# -- seeded-query-purity -----------------------------------------------

PURITY_BASE = """
    class Topology:
        def neighbors(self, node):
            raise NotImplementedError

    class Ring(Topology):
        def __init__(self, size):
            self.size = size

        def neighbors(self, node):
            return [(node - 1) % self.size, (node + 1) % self.size]
"""


class TestSeededQueryPurity:
    def test_pure_overrides_are_clean(self, tmp_path):
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/topo.py": PURITY_BASE}
        )
        assert run(root, "seeded-query-purity") == ()

    def test_self_mutation_in_query_fires(self, tmp_path):
        source = PURITY_BASE + """
    class Memoized(Topology):
        def neighbors(self, node):
            self._cache = node
            return []
"""
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/topo.py": source}
        )
        findings = run(root, "seeded-query-purity")
        assert len(findings) == 1
        assert "instance state" in findings[0].message

    def test_rng_draw_in_query_fires(self, tmp_path):
        source = PURITY_BASE + """
    class Sneaky(Topology):
        def neighbors(self, node):
            return list(self.rng.permutation(node))
"""
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/topo.py": source}
        )
        findings = run(root, "seeded-query-purity")
        assert len(findings) == 1
        assert "draws from an RNG stream" in findings[0].message

    def test_transitive_global_mutation_fires(self, tmp_path):
        # The violation is one helper call deep: neighbors itself looks
        # clean, the helper it calls mutates module state.
        source = PURITY_BASE + """
    _hits = {}

    def _record(node):
        _hits[node] = True
        return node

    class Counted(Topology):
        def neighbors(self, node):
            return [_record(node)]
"""
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/topo.py": source}
        )
        findings = run(root, "seeded-query-purity")
        assert len(findings) == 1
        assert "_record" in findings[0].message
        assert "'_hits'" in findings[0].message

    def test_pure_function_root_is_walked(self, tmp_path):
        source = """
    _seen = {}

    def counter_uniform(entropy, keys):
        _seen[keys] = entropy
        return 0.5
"""
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/rngmod.py": source}
        )
        findings = run(root, "seeded-query-purity")
        assert len(findings) == 1
        assert "counter_uniform" in findings[0].message

    def test_constructor_self_writes_are_exempt(self, tmp_path):
        # Ring.__init__ (reached through class references) writes
        # self.size — object construction, not query mutation.
        source = PURITY_BASE + """
    class Wrapped(Topology):
        def neighbors(self, node):
            return Ring(4).neighbors(node)
"""
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/topo.py": source}
        )
        assert run(root, "seeded-query-purity") == ()


# -- rng-stream-order --------------------------------------------------

SPAWN_PRELUDE = """
    def spawn_generators(seed, count):
        return list(range(count))
"""


class TestRngStreamOrder:
    def test_matched_site_is_clean(self, tmp_path):
        source = SPAWN_PRELUDE + """
    class Sim:
        def __init__(self, seed, num):
            streams = spawn_generators(seed, num + 2)
            self.workers = streams[:num]
            self.attack_rng = streams[num]
            self.delay_rng = streams[num + 1]
"""
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/sim.py": source}
        )
        assert run(root, "rng-stream-order") == ()

    def test_unconsumed_stream_fires(self, tmp_path):
        source = SPAWN_PRELUDE + """
    class Sim:
        def __init__(self, seed, num):
            streams = spawn_generators(seed, num + 3)
            self.workers = streams[:num]
            self.attack_rng = streams[num]
            self.delay_rng = streams[num + 1]
"""
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/sim.py": source}
        )
        findings = run(root, "rng-stream-order")
        assert len(findings) == 1
        assert "spawned but never consumed" in findings[0].message

    def test_offset_past_spawn_count_fires(self, tmp_path):
        source = SPAWN_PRELUDE + """
    class Sim:
        def __init__(self, seed, num):
            streams = spawn_generators(seed, num + 1)
            self.workers = streams[:num]
            self.attack_rng = streams[num + 4]
"""
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/sim.py": source}
        )
        findings = run(root, "rng-stream-order")
        assert any("outside the spawned range" in f.message for f in findings)

    def test_tuple_unpack_count_mismatch_fires(self, tmp_path):
        source = SPAWN_PRELUDE + """
    def setup(seed):
        first, second = spawn_generators(seed, 3)
        return first, second
"""
        root = make_project(
            tmp_path, {"src/pkg/__init__.py": "", "src/pkg/sim.py": source}
        )
        findings = run(root, "rng-stream-order")
        assert len(findings) == 1
        assert "unpacked into 2 target(s)" in findings[0].message


def _frozen_project(tmp_path: Path, body: str):
    source = textwrap.dedent(SPAWN_PRELUDE + body)
    path = tmp_path / "src" / "repro" / "distributed" / "simulator.py"
    path.parent.mkdir(parents=True)
    path.write_text(source)
    module = ModuleContext(
        path=str(path), source=source, tree=ast.parse(source)
    )
    # Explicit empty root: keep auxiliary/README discovery out of it.
    return build_project_context([module], root=tmp_path)


class TestFrozenStreamLayouts:
    LAYOUT = {"repro/distributed/simulator.py": ("attack", "delay")}

    def rule(self, layout=None):
        return RngStreamOrderRule(frozen_layouts=layout or self.LAYOUT)

    def test_roles_in_order_are_clean(self, tmp_path):
        project = _frozen_project(
            tmp_path,
            """
    class Sim:
        def __init__(self, seed, num):
            streams = spawn_generators(seed, num + 2)
            self.workers = streams[:num]
            self.attack_rng = streams[num]
            self.delay_rng = streams[num + 1]
""",
        )
        assert list(self.rule().check_project(project)) == []

    def test_inserted_stream_shifts_roles(self, tmp_path):
        # A 'topology' stream inserted at the attack slot: both frozen
        # roles now sit at the wrong offsets.
        project = _frozen_project(
            tmp_path,
            """
    class Sim:
        def __init__(self, seed, num):
            streams = spawn_generators(seed, num + 2)
            self.workers = streams[:num]
            self.topology_rng = streams[num]
            self.attack_rng = streams[num + 1]
""",
        )
        findings = list(self.rule().check_project(project))
        assert len(findings) == 2
        assert all("append-only" in f.message for f in findings)

    def test_layout_length_mismatch_requires_manifest_edit(self, tmp_path):
        project = _frozen_project(
            tmp_path,
            """
    class Sim:
        def __init__(self, seed, num):
            streams = spawn_generators(seed, num + 3)
            self.workers = streams[:num]
            self.attack_rng = streams[num]
            self.delay_rng = streams[num + 1]
            self.server_rng = streams[num + 2]
""",
        )
        findings = list(self.rule().check_project(project))
        assert len(findings) == 1
        assert "extending the layout manifest" in findings[0].message

    def test_consuming_a_reserved_slot_fires(self, tmp_path):
        project = _frozen_project(
            tmp_path,
            """
    class Sim:
        def __init__(self, seed, num):
            streams = spawn_generators(seed, num + 2)
            self.workers = streams[:num]
            self.attack_rng = streams[num]
            self.extra_rng = streams[num + 1]
""",
        )
        rule = self.rule(
            {"repro/distributed/simulator.py": ("attack", None)}
        )
        findings = list(rule.check_project(project))
        assert len(findings) == 1
        assert "reserved slot" in findings[0].message


# -- loop-batched-pairing ----------------------------------------------

LINALG = """
    def pairwise_sq_distances(vectors):
        return vectors

    def batched_pairwise_sq_distances(batch):
        return batch
"""

PAIRING_GOOD = """
    from repro.utils.linalg import (
        batched_pairwise_sq_distances,
        pairwise_sq_distances,
    )

    def register_batched_kernel(rule, kernel):
        pass

    class Krum:
        def select(self, vectors):
            return pairwise_sq_distances(vectors)

    class BatchedKrum:
        def aggregate_batch(self, batch):
            return batched_pairwise_sq_distances(batch)

    class Mean:
        def select(self, vectors):
            return sum(vectors)

    class BatchedMean:
        def aggregate_batch(self, batch):
            return batch

    register_batched_kernel(Krum, BatchedKrum)
    register_batched_kernel(Mean, BatchedMean)
"""

PAIRING_FILES = {
    "src/repro/__init__.py": "",
    "src/repro/utils/__init__.py": "",
    "src/repro/utils/linalg.py": LINALG,
    "src/repro/core/__init__.py": "",
    "src/repro/core/agg.py": PAIRING_GOOD,
}


class TestLoopBatchedPairing:
    def test_shared_primitive_family_is_clean(self, tmp_path):
        root = make_project(tmp_path, PAIRING_FILES)
        assert run(root, "loop-batched-pairing") == ()

    def test_inline_reimplementation_fires(self, tmp_path):
        files = dict(PAIRING_FILES)
        files["src/repro/core/agg.py"] = PAIRING_GOOD.replace(
            "return batched_pairwise_sq_distances(batch)",
            "return [sum((a - b) ** 2 for a, b in zip(x, y)) "
            "for x in batch for y in batch]",
        )
        root = make_project(tmp_path, files)
        findings = run(root, "loop-batched-pairing")
        assert len(findings) == 1
        assert "Krum" in findings[0].message
        assert "no shared" in findings[0].message

    def test_disjoint_families_fire(self, tmp_path):
        files = dict(PAIRING_FILES)
        files["src/repro/utils/linalg.py"] = LINALG + """
    def batched_weiszfeld(batch):
        return batch
"""
        files["src/repro/core/agg.py"] = PAIRING_GOOD.replace(
            "batched_pairwise_sq_distances,",
            "batched_weiszfeld,",
        ).replace(
            "return batched_pairwise_sq_distances(batch)",
            "return batched_weiszfeld(batch)",
        )
        root = make_project(tmp_path, files)
        findings = run(root, "loop-batched-pairing")
        assert len(findings) == 1
        assert "weiszfeld" in findings[0].message
