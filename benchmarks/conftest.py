"""Shared infrastructure for the reproduction benches.

Each ``bench_*`` module regenerates one figure/lemma/proposition of the
paper (see DESIGN.md §3).  Benches print the reproduced series/tables —
run ``pytest benchmarks/ --benchmark-only -s`` to see them — and assert
the qualitative claim (who wins, and roughly by how much).
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a bench's reproduced table, bypassing pytest capture noise."""
    sys.stdout.write("\n" + text + "\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Figure-scale experiments are deterministic and expensive; one round
    with one iteration gives the wall-clock without re-running the
    training loops dozens of times.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
