"""Quickstart: distributed SGD with f Byzantine workers, Krum vs averaging.

Runs the paper's headline comparison on an analytic quadratic cost:
15 workers, 3 of them Byzantine (loud Gaussian noise), aggregated by
plain averaging and by Krum.  Averaging stalls; Krum converges.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Average, GaussianAttack, Krum
from repro.experiments import build_quadratic_simulation, format_table
from repro.models import QuadraticBowl

NUM_WORKERS = 15
NUM_BYZANTINE = 3
SIGMA = 0.5  # honest gradient-estimator noise
ROUNDS = 300


def main() -> None:
    bowl = QuadraticBowl(dimension=20)
    attack = GaussianAttack(sigma=100.0)

    rows = []
    for rule in (Average(), Krum(f=NUM_BYZANTINE)):
        simulation = build_quadratic_simulation(
            bowl,
            aggregator=rule,
            num_workers=NUM_WORKERS,
            num_byzantine=NUM_BYZANTINE,
            sigma=SIGMA,
            attack=attack,
            learning_rate=0.2,
            seed=0,
        )
        history = simulation.run(ROUNDS, eval_every=50)
        rows.append(
            [
                rule.name,
                history.final_loss,
                bowl.distance_to_optimum(simulation.params),
                f"{100 * history.byzantine_selection_rate():.1f}%",
            ]
        )

    print(
        format_table(
            ["aggregation rule", "final cost Q(x)", "distance to optimum",
             "byzantine selected"],
            rows,
            title=(
                f"Krum vs averaging — n={NUM_WORKERS}, f={NUM_BYZANTINE} "
                f"Gaussian attackers, {ROUNDS} rounds"
            ),
        )
    )
    print(
        "\nAveraging is dragged by the attackers (Lemma 3.1); Krum filters"
        "\nthem out and converges (Propositions 4.2 and 4.3)."
    )


if __name__ == "__main__":
    main()
