"""Tests for history serialization and the non-finite server guard."""

import csv

import numpy as np
import pytest

from repro.attacks.simple import NonFiniteAttack
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.distributed.metrics import RoundRecord, TrainingHistory
from repro.distributed.schedules import ConstantSchedule
from repro.distributed.simulator import TrainingSimulation
from repro.exceptions import ConfigurationError, SimulationError
from repro.models.quadratic import QuadraticBowl


def _history():
    history = TrainingHistory()
    history.append(
        RoundRecord(
            round_index=0,
            learning_rate=0.1,
            aggregate_norm=1.0,
            params_norm=2.0,
            selected=(3, 4),
            byzantine_selected=1,
            loss=0.5,
            accuracy=0.9,
            grad_norm=0.2,
            extras={"dist_to_opt": 1.5},
        )
    )
    history.append(
        RoundRecord(
            round_index=1,
            learning_rate=0.1,
            aggregate_norm=0.9,
            params_norm=1.9,
        )
    )
    return history


class TestJsonRoundTrip:
    def test_round_trip(self, tmp_path):
        history = _history()
        path = tmp_path / "run.json"
        history.save_json(path)
        loaded = TrainingHistory.load_json(path)
        assert len(loaded) == 2
        assert loaded[0].selected == (3, 4)
        assert loaded[0].extras == {"dist_to_opt": 1.5}
        assert loaded[0].loss == 0.5
        assert loaded[1].loss is None

    def test_series_survive(self, tmp_path):
        history = _history()
        path = tmp_path / "run.json"
        history.save_json(path)
        loaded = TrainingHistory.load_json(path)
        rounds, losses = loaded.series("loss")
        np.testing.assert_array_equal(rounds, [0])
        np.testing.assert_array_equal(losses, [0.5])


class TestCsvExport:
    def test_csv_contents(self, tmp_path):
        history = _history()
        path = tmp_path / "run.csv"
        history.save_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["selected"] == "3;4"
        assert rows[0]["dist_to_opt"] == "1.5"
        assert rows[1]["loss"] == ""


class TestNonFiniteGuard:
    def _sim(self, aggregator, halt):
        bowl = QuadraticBowl(4)
        sim = TrainingSimulation(
            aggregator=aggregator,
            schedule=ConstantSchedule(0.1),
            honest_estimators=[bowl.as_estimator(0.1) for _ in range(7)],
            initial_params=np.ones(4),
            num_byzantine=2,
            attack=NonFiniteAttack(),
            seed=0,
        )
        sim.server.halt_on_nonfinite = halt
        return sim

    def test_average_halts_loudly(self):
        sim = self._sim(Average(), halt=True)
        with pytest.raises(SimulationError, match="non-finite"):
            sim.run(5)

    def test_average_silently_poisoned_without_guard(self):
        sim = self._sim(Average(), halt=False)
        sim.run(3)
        assert np.all(np.isnan(sim.params))

    def test_krum_survives_nan_attack(self):
        sim = self._sim(Krum(f=2), halt=True)
        history = sim.run(50)
        assert np.all(np.isfinite(sim.params))
        assert history.byzantine_selection_rate() == 0.0

    def test_nonfinite_attack_validates_value(self):
        with pytest.raises(ConfigurationError):
            NonFiniteAttack(value=1.0)

    def test_inf_variant(self):
        sim = self._sim(Krum(f=2), halt=True)
        sim.attack = NonFiniteAttack(value=float("inf"))
        history = sim.run(20)
        assert np.all(np.isfinite(sim.params))
        assert history.byzantine_selection_rate() == 0.0
