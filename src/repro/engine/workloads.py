"""The workload registry — what a grid cell *trains on*.

A :class:`Workload` owns everything about the learning task of a grid
cell: the model, the data (and how it is partitioned across honest
workers), the gradient estimator and the evaluator.  It knows its
parameter dimension up front and materializes one cell's
:class:`~repro.distributed.simulator.TrainingSimulation` on demand, so
:class:`~repro.engine.grid.ScenarioGrid` stays a declarative spec:
a cell names its workload ("quadratic", "mlp-mnist", ...) plus keyword
arguments, exactly like it names its aggregator and attack.

The registry mirrors :mod:`repro.core.registry` (aggregators) and
:mod:`repro.attacks.registry` (attacks) — ``register_workload`` /
``available_workloads`` / ``make_workload`` — with the same
:class:`ConfigurationError` contract: an unknown name or keyword
arguments that do not fit the factory's signature raise a readable
error naming the workload and the parameters it accepts.

Built-in workloads:

* ``quadratic`` — the paper's Section-4 analytic setting: a quadratic
  bowl with the Gaussian gradient oracle (the engine's historical only
  workload, and still the default).
* ``logistic-spambase`` — binary logistic regression on the
  spambase-shaped dataset (the full paper's spam-filtering task).
* ``softmax-mnist`` — linear softmax regression on the procedural
  digit dataset.
* ``mlp-mnist`` — the full paper's MNIST workload: a dense network on
  the procedural digits, trained by distributed SGD.

The dataset-backed workloads materialize lazily: constructing one (as
``ScenarioGrid.validate()`` does to check names and kwargs) costs
nothing; data generation happens on the first ``build``/``dimension``
access and is cached, so every cell of a grid shares one dataset and
one model object.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence

from repro.attacks.base import Attack
from repro.core.aggregator import Aggregator
from repro.data.dataset import Dataset
from repro.data.mnist_like import IMAGE_SIDE, make_mnist_like
from repro.data.partition import PARTITION_PROTOCOLS
from repro.data.spambase_like import NUM_FEATURES, make_spambase_like
from repro.distributed.delays import DelaySchedule
from repro.distributed.simulator import TrainingSimulation
from repro.exceptions import ConfigurationError
from repro.experiments.builders import (
    build_dataset_simulation,
    build_quadratic_simulation,
)
from repro.models.base import Model
from repro.models.logistic import LogisticRegressionModel
from repro.models.mlp import MLPClassifier
from repro.models.quadratic import QuadraticBowl
from repro.models.softmax import SoftmaxRegressionModel
from repro.servers.attacks import ServerAttack
from repro.utils.validation import check_factory_kwargs

__all__ = [
    "Workload",
    "QuadraticWorkload",
    "DatasetWorkload",
    "LogisticSpambaseWorkload",
    "SoftmaxMnistWorkload",
    "MlpMnistWorkload",
    "register_workload",
    "available_workloads",
    "workload_factory",
    "make_workload",
    "workload_key",
    "QUADRATIC_DEFAULTS",
]

class Workload(ABC):
    """A learning task a grid cell can train on.

    Instances are cheap to construct and shareable across cells: one
    workload object materializes every cell of a grid that names it
    (with the same kwargs), so expensive state — datasets, models —
    is built once and reused.  Per-cell randomness (parameter init,
    data partitioning, worker RNG streams) comes from the cell's
    ``seed``, threaded through :meth:`build`.
    """

    #: Registry name; subclasses set this as a class attribute.
    name: str = ""

    @property
    @abstractmethod
    def dimension(self) -> int:
        """The flat parameter dimension d every cell of this workload
        trains in (the batched executor groups cells by it)."""

    @abstractmethod
    def build(
        self,
        *,
        aggregator: Aggregator,
        num_workers: int,
        num_byzantine: int,
        attack: Attack | None,
        learning_rate: float,
        lr_timescale: float | None,
        byzantine_slots: str | Sequence[int],
        seed: int,
        max_staleness: int = 0,
        delay_schedule: DelaySchedule | str | None = None,
        num_servers: int = 1,
        byzantine_servers: int = 0,
        num_shards: int = 1,
        server_attack: ServerAttack | str | None = None,
        halt_on_nonfinite: bool = False,
    ) -> TrainingSimulation:
        """Materialize one cell's simulation on this workload.

        ``max_staleness``/``delay_schedule`` select the asynchronous
        round model (both default to the synchronous loop),
        ``num_servers``/``byzantine_servers``/``num_shards``/
        ``server_attack`` configure the parameter-server tier (defaults
        are the paper's single reliable server) and
        ``halt_on_nonfinite`` arms the server's non-finite guard; all of
        them thread straight through to
        :class:`~repro.distributed.simulator.TrainingSimulation`.
        """


class QuadraticWorkload(Workload):
    """The paper's analytic setting: quadratic bowl + Gaussian oracle.

    Honest workers share the exact gradient ``∇Q`` and add i.i.d.
    Gaussian noise of scale ``sigma`` — the Section-4 estimator model.
    This is the engine's fast-path workload: the batched executor
    evaluates the shared gradient once per cell-round.
    """

    name = "quadratic"

    def __init__(
        self,
        dimension: int = 10,
        sigma: float = 0.1,
        curvature: float = 1.0,
    ):
        if int(dimension) < 1:
            raise ConfigurationError(
                f"dimension must be >= 1, got {dimension}"
            )
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        if curvature <= 0:
            raise ConfigurationError(
                f"curvature must be positive, got {curvature}"
            )
        self._dimension = int(dimension)
        self.sigma = float(sigma)
        self.curvature = float(curvature)
        self._bowl: QuadraticBowl | None = None

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def bowl(self) -> QuadraticBowl:
        """The shared cost object (lazily built; one d × d curvature
        matrix for every cell of the grid)."""
        if self._bowl is None:
            self._bowl = QuadraticBowl(
                self._dimension, curvature=self.curvature
            )
        return self._bowl

    def build(
        self,
        *,
        aggregator,
        num_workers,
        num_byzantine,
        attack,
        learning_rate,
        lr_timescale,
        byzantine_slots,
        seed,
        max_staleness=0,
        delay_schedule=None,
        num_servers=1,
        byzantine_servers=0,
        num_shards=1,
        server_attack=None,
        halt_on_nonfinite=False,
    ) -> TrainingSimulation:
        return build_quadratic_simulation(
            self.bowl,
            aggregator=aggregator,
            num_workers=num_workers,
            num_byzantine=num_byzantine,
            sigma=self.sigma,
            attack=attack,
            learning_rate=learning_rate,
            lr_timescale=lr_timescale,
            byzantine_slots=byzantine_slots,
            max_staleness=max_staleness,
            delay_schedule=delay_schedule,
            num_servers=num_servers,
            byzantine_servers=byzantine_servers,
            num_shards=num_shards,
            server_attack=server_attack,
            halt_on_nonfinite=halt_on_nonfinite,
            seed=seed,
        )


#: The quadratic workload's default knobs — shared with the grid's
#: deprecation shim (old scalar fields) and its label encoding.
#: Derived from the factory signature so it cannot drift from
#: ``QuadraticWorkload.__init__``.
QUADRATIC_DEFAULTS: dict[str, object] = {
    name: parameter.default
    for name, parameter in inspect.signature(
        QuadraticWorkload.__init__
    ).parameters.items()
    if parameter.default is not inspect.Parameter.empty
}


class DatasetWorkload(Workload):
    """Shared machinery of the dataset-backed workloads.

    Honest workers hold disjoint shards of a train set (``partition``
    selects the protocol) and estimate gradients on uniform mini-batches
    of ``batch_size``; the attack's omniscient oracle is the
    full-train-set gradient and the evaluator reports held-out loss and
    accuracy.  ``data_seed`` controls the generated data only — the
    cell's ``seed`` controls partitioning, parameter init and worker
    streams, so sweeping seeds re-shards the *same* dataset.
    """

    def __init__(
        self,
        *,
        num_train: int,
        num_eval: int,
        batch_size: int,
        partition: str,
        dirichlet_alpha: float,
        data_seed: int,
    ):
        if num_train < 1 or num_eval < 1:
            raise ConfigurationError(
                f"need num_train >= 1 and num_eval >= 1, got "
                f"({num_train}, {num_eval})"
            )
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if partition not in PARTITION_PROTOCOLS:
            raise ConfigurationError(
                f"partition must be one of {PARTITION_PROTOCOLS}, "
                f"got {partition!r}"
            )
        if dirichlet_alpha <= 0:
            raise ConfigurationError(
                f"dirichlet_alpha must be positive, got {dirichlet_alpha}"
            )
        self.num_train = int(num_train)
        self.num_eval = int(num_eval)
        self.batch_size = int(batch_size)
        self.partition = partition
        self.dirichlet_alpha = float(dirichlet_alpha)
        self.data_seed = int(data_seed)
        self._model: Model | None = None
        self._data: tuple[Dataset, Dataset] | None = None

    @abstractmethod
    def _build_model(self) -> Model:
        """Construct the (shareable, conceptually stateless) model."""

    @abstractmethod
    def _build_data(self) -> tuple[Dataset, Dataset]:
        """Generate the (train, eval) datasets from ``data_seed``."""

    @property
    def model(self) -> Model:
        if self._model is None:
            self._model = self._build_model()
        return self._model

    @property
    def datasets(self) -> tuple[Dataset, Dataset]:
        if self._data is None:
            self._data = self._build_data()
        return self._data

    @property
    def dimension(self) -> int:
        return self.model.dimension

    def build(
        self,
        *,
        aggregator,
        num_workers,
        num_byzantine,
        attack,
        learning_rate,
        lr_timescale,
        byzantine_slots,
        seed,
        max_staleness=0,
        delay_schedule=None,
        num_servers=1,
        byzantine_servers=0,
        num_shards=1,
        server_attack=None,
        halt_on_nonfinite=False,
    ) -> TrainingSimulation:
        train, evaluation = self.datasets
        return build_dataset_simulation(
            self.model,
            train,
            aggregator=aggregator,
            num_workers=num_workers,
            num_byzantine=num_byzantine,
            attack=attack,
            batch_size=self.batch_size,
            learning_rate=learning_rate,
            lr_timescale=lr_timescale,
            eval_dataset=evaluation,
            byzantine_slots=byzantine_slots,
            partition=self.partition,
            dirichlet_alpha=self.dirichlet_alpha,
            max_staleness=max_staleness,
            delay_schedule=delay_schedule,
            num_servers=num_servers,
            byzantine_servers=byzantine_servers,
            num_shards=num_shards,
            server_attack=server_attack,
            halt_on_nonfinite=halt_on_nonfinite,
            seed=seed,
        )


class LogisticSpambaseWorkload(DatasetWorkload):
    """Binary logistic regression on the spambase-shaped dataset."""

    name = "logistic-spambase"

    def __init__(
        self,
        num_train: int = 512,
        num_eval: int = 256,
        batch_size: int = 32,
        partition: str = "iid",
        dirichlet_alpha: float = 0.5,
        l2: float = 0.0,
        separation: float = 1.0,
        data_seed: int = 0,
    ):
        super().__init__(
            num_train=num_train,
            num_eval=num_eval,
            batch_size=batch_size,
            partition=partition,
            dirichlet_alpha=dirichlet_alpha,
            data_seed=data_seed,
        )
        self.l2 = float(l2)
        self.separation = float(separation)

    def _build_model(self) -> Model:
        return LogisticRegressionModel(NUM_FEATURES, l2=self.l2)

    def _build_data(self) -> tuple[Dataset, Dataset]:
        train = make_spambase_like(
            self.num_train, separation=self.separation, seed=self.data_seed
        )
        evaluation = make_spambase_like(
            self.num_eval,
            separation=self.separation,
            seed=self.data_seed + 1,
        )
        return train, evaluation


class SoftmaxMnistWorkload(DatasetWorkload):
    """Linear softmax regression on the procedural digit dataset."""

    name = "softmax-mnist"

    def __init__(
        self,
        num_train: int = 512,
        num_eval: int = 256,
        batch_size: int = 32,
        partition: str = "iid",
        dirichlet_alpha: float = 0.5,
        l2: float = 0.0,
        noise: float = 0.15,
        data_seed: int = 0,
    ):
        super().__init__(
            num_train=num_train,
            num_eval=num_eval,
            batch_size=batch_size,
            partition=partition,
            dirichlet_alpha=dirichlet_alpha,
            data_seed=data_seed,
        )
        self.l2 = float(l2)
        self.noise = float(noise)

    def _build_model(self) -> Model:
        return SoftmaxRegressionModel(IMAGE_SIDE * IMAGE_SIDE, 10, l2=self.l2)

    def _build_data(self) -> tuple[Dataset, Dataset]:
        train = make_mnist_like(
            self.num_train, noise=self.noise, seed=self.data_seed
        )
        evaluation = make_mnist_like(
            self.num_eval, noise=self.noise, seed=self.data_seed + 1
        )
        return train, evaluation


class MlpMnistWorkload(DatasetWorkload):
    """The full paper's MNIST task: a dense network on the digits."""

    name = "mlp-mnist"

    def __init__(
        self,
        num_train: int = 512,
        num_eval: int = 256,
        batch_size: int = 32,
        partition: str = "iid",
        dirichlet_alpha: float = 0.5,
        hidden_sizes: Sequence[int] = (32,),
        activation: str = "relu",
        init_seed: int = 0,
        noise: float = 0.15,
        data_seed: int = 0,
    ):
        super().__init__(
            num_train=num_train,
            num_eval=num_eval,
            batch_size=batch_size,
            partition=partition,
            dirichlet_alpha=dirichlet_alpha,
            data_seed=data_seed,
        )
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.activation = str(activation)
        self.init_seed = int(init_seed)
        self.noise = float(noise)

    def _build_model(self) -> Model:
        return MLPClassifier(
            IMAGE_SIDE * IMAGE_SIDE,
            10,
            hidden_sizes=self.hidden_sizes,
            activation=self.activation,
            init_seed=self.init_seed,
        )

    def _build_data(self) -> tuple[Dataset, Dataset]:
        train = make_mnist_like(
            self.num_train, noise=self.noise, seed=self.data_seed
        )
        evaluation = make_mnist_like(
            self.num_eval, noise=self.noise, seed=self.data_seed + 1
        )
        return train, evaluation


# ----------------------------------------------------------------------
# Registry

_REGISTRY: dict[str, Callable[..., Workload]] = {}


def register_workload(name: str, factory: Callable[..., Workload]) -> None:
    """Register a workload under ``name``; later registrations override."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"workload name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def available_workloads() -> list[str]:
    """Sorted list of registered workload names."""
    return sorted(_REGISTRY)


def workload_factory(name: str) -> Callable[..., Workload]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        )
    return _REGISTRY[name]


def make_workload(
    name: str, kwargs: Mapping[str, object] | None = None
) -> Workload:
    """Build a workload by name, e.g. ``make_workload("quadratic", {"dimension": 50})``.

    Keyword arguments that do not fit the factory's signature (unknown
    names, missing required parameters) raise
    :class:`ConfigurationError` naming the workload and the parameters
    it accepts — the same contract as :func:`~repro.attacks.registry.make_attack`.
    """
    factory = workload_factory(name)
    resolved = dict(kwargs or {})
    check_factory_kwargs("workload", name, factory, resolved)
    return factory(**resolved)


def workload_key(
    name: str, kwargs: Mapping[str, object] | None = None
) -> tuple:
    """Hashable identity of a ``(name, kwargs)`` workload spec.

    ``repr``-based so unhashable kwarg values (lists, dicts) still key
    correctly; used to share one workload instance across the cells of a
    grid and to deduplicate validation.
    """
    return (
        name,
        tuple(sorted((k, repr(v)) for k, v in (kwargs or {}).items())),
    )


register_workload("quadratic", QuadraticWorkload)
register_workload("logistic-spambase", LogisticSpambaseWorkload)
register_workload("softmax-mnist", SoftmaxMnistWorkload)
register_workload("mlp-mnist", MlpMnistWorkload)
