"""rng-discipline: all randomness flows through ``repro.utils.rng``.

The loop/batched bit-for-bit guarantee holds because every stream in a
simulation is spawned — in a fixed order — from one root seed
(``as_generator`` / ``spawn_generators``).  A stray
``np.random.default_rng(...)`` or legacy ``np.random.*`` draw creates a
stream the seeding discipline does not know about: results stop being a
function of the root seed, and the differential tests can no longer
pin them.  The stdlib ``random`` module is the same hazard with global
state on top.

Allowed everywhere: ``np.random.Generator`` / ``np.random.SeedSequence``
/ ``np.random.BitGenerator`` — type references and deterministic seeding
machinery (the counter-based ``SeedSequence`` keying in the delay
schedules is *how* the discipline is implemented, not a violation).
``repro/utils/rng.py`` itself is the sanctioned wrapper and is exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.base import LintRule, ModuleContext
from repro.lint.findings import Finding

__all__ = ["RngDisciplineRule"]

#: The one module allowed to call ``np.random.default_rng``.
SANCTIONED_MODULES = ("repro/utils/rng.py",)

#: Deterministic seeding/typing machinery — not draws.
_ALLOWED_NP_RANDOM = frozenset({"Generator", "SeedSequence", "BitGenerator"})


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: RngDisciplineRule, module: ModuleContext):
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []
        self.numpy_aliases: set[str] = set()
        self.random_aliases: set[str] = set()
        self._sanctioned: set[int] = set()

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.module, node, message))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            if alias.name == "random" or alias.name.startswith("random."):
                self.random_aliases.add(alias.asname or alias.name.split(".")[0])
                self._flag(
                    node,
                    "the stdlib 'random' module has global state — draw "
                    "through repro.utils.rng (as_generator / "
                    "spawn_generators) instead",
                )
            if alias.name == "numpy.random":
                self._flag(
                    node,
                    "import numpy.random hides draws from the seeding "
                    "discipline — use repro.utils.rng",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._flag(
                node,
                "the stdlib 'random' module has global state — draw "
                "through repro.utils.rng instead",
            )
        elif node.module in ("numpy.random", "numpy"):
            for alias in node.names:
                if (
                    node.module == "numpy.random"
                    and alias.name not in _ALLOWED_NP_RANDOM
                ) or (node.module == "numpy" and alias.name == "random"):
                    self._flag(
                        node,
                        f"importing {alias.name!r} from {node.module} "
                        f"bypasses the seeded-stream discipline — use "
                        f"repro.utils.rng (as_generator / "
                        f"spawn_generators)",
                    )
        self.generic_visit(node)

    def _is_np_random(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.numpy_aliases
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.random_aliases
        ):
            # Usage sites are flagged besides the import: a suppressed
            # import line must not grandfather in every later draw.
            self._flag(
                node,
                f"{node.value.id}.{node.attr} draws from the stdlib "
                f"global RNG — results stop being a function of the root "
                f"seed; use repro.utils.rng (as_generator / "
                f"spawn_generators)",
            )
        if self._is_np_random(node.value):
            self._sanctioned.add(id(node.value))
            if node.attr == "seed":
                self._flag(
                    node,
                    "np.random.seed mutates numpy's process-global RNG "
                    "state — every legacy draw anywhere shifts with it; "
                    "bind an explicit Generator from repro.utils.rng "
                    "instead",
                )
            elif node.attr not in _ALLOWED_NP_RANDOM:
                self._flag(
                    node,
                    f"np.random.{node.attr} bypasses the seeded-stream "
                    f"discipline — draw through repro.utils.rng "
                    f"(as_generator / spawn_generators)",
                )
        elif self._is_np_random(node) and id(node) not in self._sanctioned:
            # np.random passed around bare (aliasing the module) — the
            # draws it enables are untraceable from here.
            self._flag(
                node,
                "np.random used as a value — draw through repro.utils.rng",
            )
        self.generic_visit(node)


class RngDisciplineRule(LintRule):
    """No np.random.* draws or stdlib random anywhere in the library."""

    name = "rng-discipline"
    description = (
        "all randomness flows through repro.utils.rng seeded streams — no "
        "np.random.default_rng, legacy np.random.*, or stdlib random"
    )

    def __init__(
        self, sanctioned_modules: tuple[str, ...] = SANCTIONED_MODULES
    ):
        self.sanctioned_modules = tuple(sanctioned_modules)

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.is_module(*self.sanctioned_modules):
            return ()
        visitor = _Visitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings
