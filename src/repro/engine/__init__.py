"""Scenario-grid engine: declarative grids, batched execution.

The paper's experiments are grids — seeds × workloads × attacks ×
aggregators × f — and the seed code ran every cell as an independent
Python round loop.  This package batches B replica cells into
``(B, n, d)`` proposal tensors so the benchmark wall-time tracks the
O(n² · d) aggregation arithmetic (Lemma 4.1) instead of interpreter
overhead, while staying bit-for-bit identical to the per-cell loop (the
differential test harness in ``tests/engine/`` proves it).

What a cell trains on is a *workload* — a registry entry exactly like
aggregators and attacks.  ``"quadratic"`` (the paper's Section-4
analytic setting) is the default; dataset-backed workloads
(``"logistic-spambase"``, ``"softmax-mnist"``, ``"mlp-mnist"``) train
real models on sharded data, and a grid may sweep several workloads at
once — the executor batches cells per parameter dimension.

Quickstart::

    from repro.engine import ScenarioGrid, run_grid

    grid = ScenarioGrid(
        seeds=(0, 1, 2),
        workloads=(
            ("quadratic", {"dimension": 50, "sigma": 0.2}),
            ("logistic-spambase", {"num_train": 256, "batch_size": 16}),
        ),
        attacks=(("gaussian", {"sigma": 200.0}), ("omniscient", {})),
        aggregators=(("krum", {}), ("average", {})),
        f_values=(0, 3),
        num_workers=15, num_rounds=40,
    )
    result = run_grid(grid, mode="batched")
    for label, history in result.histories.items():
        print(label, history.final_loss)

``run_grid(grid, mode="loop")`` executes the same cells through the
classic one-simulation-at-a-time path — same histories, more wall time —
which is what the engine benchmarks (``benchmarks/bench_engine_grid.py``
and ``benchmarks/bench_engine_workloads.py``) measure and the
``BENCH_engine*.json`` files record.

``run_grid(grid, backend="torch")`` routes the batched aggregation
kernels through a registered array backend (:mod:`repro.backend`); the
default numpy backend is the bit-for-bit reference, and ``GridResult``
reports the resolved backend (e.g. ``"numpy[float64]"``).
"""

from repro.engine.grid import ScenarioGrid, ScenarioSpec
from repro.engine.runner import GridResult, build_scenario_simulation, run_grid
from repro.engine.simulation import BatchedSimulation
from repro.engine.workloads import (
    DatasetWorkload,
    LogisticSpambaseWorkload,
    MlpMnistWorkload,
    QuadraticWorkload,
    SoftmaxMnistWorkload,
    Workload,
    available_workloads,
    make_workload,
    register_workload,
    workload_factory,
)

__all__ = [
    "ScenarioGrid",
    "ScenarioSpec",
    "BatchedSimulation",
    "GridResult",
    "build_scenario_simulation",
    "run_grid",
    "Workload",
    "QuadraticWorkload",
    "DatasetWorkload",
    "LogisticSpambaseWorkload",
    "SoftmaxMnistWorkload",
    "MlpMnistWorkload",
    "register_workload",
    "available_workloads",
    "workload_factory",
    "make_workload",
]
