"""Random-noise attacks (the full paper's "Gaussian" attacker)."""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import ConfigurationError

__all__ = ["GaussianAttack"]


class GaussianAttack(Attack):
    """Each Byzantine worker sends ``N(mean, σ² I_d)`` noise.

    With a large σ (the full paper uses σ = 200) this destroys a linear
    aggregate immediately while being trivially filtered by Krum — it is
    the "loud" attack of the evaluation section.
    """

    def __init__(self, sigma: float = 200.0, mean: float = 0.0):
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)
        self.mean = float(mean)
        self.name = f"gaussian(sigma={self.sigma:g})"

    def craft(self, context: AttackContext) -> np.ndarray:
        proposals = context.rng.normal(
            self.mean, self.sigma, size=(context.num_byzantine, context.dimension)
        )
        return self._output(context, proposals)
