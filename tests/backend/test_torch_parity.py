"""Torch-backend parity: every native kernel agrees with numpy.

The torch backend is qualified against the numpy reference on identical
float64 inputs.  Bit-for-bit identity is *not* the contract (BLAS
reduction orders differ between libraries); the documented tolerance is
``rtol=1e-9, atol=1e-9`` at float64 — a generous multiple of round-off,
far below any statistically meaningful difference in the experiments —
except where a kernel is purely selection/permutation (Krum winners,
Bulyan committees, Multi-Krum order), which must match *exactly*.

The whole module skips cleanly when torch is not installed (the
numpy-only CI leg); the dedicated CI torch leg installs CPU torch and
runs it.
"""

from __future__ import annotations

import numpy as np
import pytest

torch = pytest.importorskip("torch")

from repro.backend import backend_installed, make_backend  # noqa: E402
from repro.baselines.average import Average  # noqa: E402
from repro.baselines.distance_based import ClosestToAll  # noqa: E402
from repro.baselines.medians import (  # noqa: E402
    CoordinateWiseMedian,
    GeometricMedian,
    TrimmedMean,
    batched_weiszfeld,
)
from repro.core.batched import (  # noqa: E402
    batched_krum_scores,
    make_batched_aggregator,
)
from repro.core.bulyan import Bulyan, batched_bulyan  # noqa: E402
from repro.core.krum import Krum, MultiKrum  # noqa: E402
from repro.engine import ScenarioGrid, run_grid  # noqa: E402
from repro.utils.linalg import (  # noqa: E402
    batched_pairwise_sq_distances,
    masked_coordinate_median,
    masked_krum_scores,
)

RTOL = 1e-9
ATOL = 1e-9

NATIVE_RULES = [
    Krum(f=2),
    MultiKrum(f=2, m=3),
    Average(),
    CoordinateWiseMedian(),
    TrimmedMean(f=2),
    ClosestToAll(),
    Bulyan(f=2),
    GeometricMedian(),
]


@pytest.fixture(scope="module")
def torch_backend():
    return make_backend("torch")


def reference_batches() -> list[np.ndarray]:
    """Reference grids covering the adversarial corners: duplicates,
    non-finite rows, far outliers, coincident clouds."""
    rng = np.random.default_rng(42)
    plain = rng.standard_normal((5, 11, 9))
    corners = rng.standard_normal((6, 12, 7))
    corners[0, 4] = corners[0, 1]  # exact duplicate proposals
    corners[1, -1] = np.inf  # non-finite Byzantine row
    corners[2, -1] = np.nan
    corners[3, -1] = 1e7  # far outlier
    corners[4] = -0.75  # fully coincident cloud
    wide = rng.standard_normal((3, 15, 40)) * 10.0
    return [plain, corners, wide]


def close(a, b) -> bool:
    return np.allclose(
        np.asarray(a), np.asarray(b), rtol=RTOL, atol=ATOL, equal_nan=True
    )


class TestBackendConstruction:
    def test_installed_and_buildable(self, torch_backend):
        assert backend_installed("torch")
        assert torch_backend.name == "torch"
        assert torch_backend.describe() == "torch[float64]"
        assert torch_backend.numpy_float_dtype == np.dtype(np.float64)

    def test_float32_configuration(self):
        backend = make_backend("torch", {"dtype": "float32"})
        assert backend.describe() == "torch[float32]"
        assert backend.numpy_float_dtype == np.dtype(np.float32)

    def test_bad_device_is_configuration_error(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="device"):
            make_backend("torch", {"device": "not-a-device"})

    def test_namespace_fully_implemented(self):
        from repro.backend.torch_backend import TorchBackend

        assert not getattr(TorchBackend, "__abstractmethods__", None)


class TestKernelParity:
    """Every registered native kernel, across every reference grid."""

    @pytest.mark.parametrize("rule", NATIVE_RULES, ids=lambda r: r.name)
    def test_kernel_agrees_with_numpy(self, rule, torch_backend):
        for index, stacks in enumerate(reference_batches()):
            if isinstance(rule, GeometricMedian) and not np.all(
                np.isfinite(stacks)
            ):
                # Weiszfeld never converges on non-finite rows (both
                # backends raise ConvergenceError); swap them for finite
                # outliers so the rest of the corner batch — notably the
                # fully-coincident cloud, which drives the Vardi–Zhang
                # certification and dampened-step branches — still runs
                # on torch instead of being skipped wholesale.
                stacks = np.where(np.isfinite(stacks), stacks, -4e4)
            reference = make_batched_aggregator(rule).aggregate_batch(stacks)
            routed = make_batched_aggregator(
                rule, backend=torch_backend
            ).aggregate_batch(stacks)
            vectors = torch_backend.to_numpy(routed.vectors)
            assert close(reference.vectors, vectors), (rule.name, index)
            # Selection sets are pure index arithmetic — exact match.
            assert len(reference.selected) == len(routed.selected)
            for ref_rows, routed_rows in zip(
                reference.selected, routed.selected
            ):
                assert np.array_equal(
                    np.asarray(ref_rows),
                    torch_backend.to_numpy(routed_rows),
                ), (rule.name, index)

    def test_primitive_parity(self, torch_backend):
        stacks = reference_batches()[1]
        for kwargs in ({}, {"nonfinite_as_inf": True}):
            assert close(
                batched_pairwise_sq_distances(stacks, **kwargs),
                torch_backend.to_numpy(
                    batched_pairwise_sq_distances(
                        stacks, backend=torch_backend, **kwargs
                    )
                ),
            )
        assert close(
            batched_krum_scores(stacks, 2),
            torch_backend.to_numpy(
                batched_krum_scores(stacks, 2, backend=torch_backend)
            ),
        )
        distances = batched_pairwise_sq_distances(stacks, nonfinite_as_inf=True)
        active = np.ones(stacks.shape[:2], dtype=bool)
        active[:, -1] = False
        assert close(
            masked_krum_scores(distances, active, 3),
            torch_backend.to_numpy(
                masked_krum_scores(distances, active, 3, backend=torch_backend)
            ),
        )
        assert close(
            masked_coordinate_median(stacks, active),
            torch_backend.to_numpy(
                masked_coordinate_median(stacks, active, backend=torch_backend)
            ),
        )
        vectors, committees = batched_bulyan(stacks, 2)
        t_vectors, t_committees = batched_bulyan(
            stacks, 2, backend=torch_backend
        )
        assert close(vectors, torch_backend.to_numpy(t_vectors))
        assert np.array_equal(committees, torch_backend.to_numpy(t_committees))

    def test_weiszfeld_parity(self, torch_backend):
        # The plain batch plus the finite-ized corners batch: duplicate
        # rows, far outliers and the fully-coincident cloud exercise the
        # singularity handling (cluster certification, dampened steps,
        # stall strikes), not just the smooth fixed-point path.
        batches = reference_batches()
        corners = np.where(
            np.isfinite(batches[1]), batches[1], -4e4
        )
        for stacks in (batches[0], corners):
            assert close(
                batched_weiszfeld(stacks),
                torch_backend.to_numpy(
                    batched_weiszfeld(stacks, backend=torch_backend)
                ),
            )

    def test_chunked_execution_parity(self, torch_backend):
        stacks = reference_batches()[0]
        rule = Krum(f=2)
        whole = make_batched_aggregator(
            rule, backend=torch_backend
        ).aggregate_batch(stacks)
        chunked = make_batched_aggregator(
            rule, chunk_size=2, backend=torch_backend
        ).aggregate_batch(stacks)
        assert np.array_equal(
            torch_backend.to_numpy(whole.vectors),
            torch_backend.to_numpy(chunked.vectors),
        )


class TestEngineParity:
    def make_grid(self) -> ScenarioGrid:
        return ScenarioGrid(
            seeds=(0, 1),
            attacks=(
                ("gaussian", {"sigma": 50.0}),
                ("omniscient", {"scale": 5.0}),
            ),
            aggregators=(
                ("krum", {}),
                ("multi-krum", {"m": 3}),
                ("average", {}),
                ("coordinate-median", {}),
                ("trimmed-mean", {}),
                ("closest-to-all", {}),
                ("bulyan", {}),
                ("geometric-median", {}),
            ),
            f_values=(2,),
            num_workers=11,
            dimension=8,
            sigma=0.4,
            num_rounds=10,
            learning_rate=0.1,
        )

    def test_full_grid_matches_loop_within_tolerance(self):
        grid = self.make_grid()
        loop = run_grid(grid, mode="loop")
        routed = run_grid(grid, mode="batched", backend="torch")
        assert routed.backend == "torch[float64]"
        assert routed.native_fraction == 1.0
        for label in loop.histories:
            assert np.allclose(
                loop.final_params[label],
                routed.final_params[label],
                rtol=1e-7,
                atol=1e-8,
            ), label
