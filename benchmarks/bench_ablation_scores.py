"""E11 — Ablation: score mechanics, tie-breaks and slot placement.

Design-choice checks called out in DESIGN.md §5:
  * the deterministic smallest-id tie-break introduces no worker bias in
    benign operation (selection histogram ~ uniform over honest ids);
  * where the adversary's slots sit (first/last ids) does not change
    Krum's robustness, despite the id-based tie-break;
  * Multi-Krum's selected set is stable in m (nested prefixes).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.random_noise import GaussianAttack
from repro.core.krum import Krum, MultiKrum, krum_scores
from repro.experiments.builders import build_quadratic_simulation
from repro.experiments.reporting import format_table
from repro.models.quadratic import QuadraticBowl

N, F, DIMENSION = 13, 3, 8


def bench_ablation_selection_histogram_unbiased(benchmark):
    """Without Byzantine workers, every worker should win Krum's
    selection about equally often — the id tie-break must not bias."""
    trials = 4000

    def run():
        rng = np.random.default_rng(0)
        rule = Krum(f=F)
        counts = np.zeros(N, dtype=int)
        for _ in range(trials):
            vectors = rng.standard_normal((N, DIMENSION))
            result = rule.aggregate_detailed(vectors)
            counts[int(result.selected[0])] += 1
        return counts

    counts = run_once(benchmark, run)
    emit(
        format_table(
            ["worker id", "wins", "share%"],
            [[i, int(c), 100 * c / trials] for i, c in enumerate(counts)],
            title=f"Ablation — Krum selection histogram, no attack (n={N})",
        )
    )
    expected = trials / N
    # Chi-square-ish sanity bound: no worker deviates wildly.
    assert counts.min() > expected * 0.6
    assert counts.max() < expected * 1.4


def bench_ablation_slot_placement_invariance(benchmark):
    """Byzantine ids first vs last: final loss must be comparable —
    robustness cannot hinge on the adversary's position in the id
    ordering."""

    def run():
        results = {}
        for placement in ("first", "last"):
            bowl = QuadraticBowl(DIMENSION)
            sim = build_quadratic_simulation(
                bowl,
                aggregator=Krum(f=F),
                num_workers=N,
                num_byzantine=F,
                sigma=0.1,
                attack=GaussianAttack(sigma=100.0),
                byzantine_slots=placement,
                learning_rate=0.2,
                seed=5,
            )
            history = sim.run(200, eval_every=40)
            results[placement] = (
                history.final_loss,
                history.byzantine_selection_rate(),
            )
        return results

    results = run_once(benchmark, run)
    emit(
        format_table(
            ["byzantine slots", "final loss", "byz-sel%"],
            [[k, v[0], 100 * v[1]] for k, v in results.items()],
            title="Ablation — adversary slot placement (Krum, Gaussian attack)",
        )
    )
    for placement, (loss, sel_rate) in results.items():
        assert loss < 0.5, f"placement={placement} failed to converge"
        assert sel_rate < 0.05


def bench_ablation_multikrum_nested_selection(benchmark):
    """Multi-Krum selections are nested in m (same score ranking), so m
    is a pure speed/robustness-slack knob, not a different estimator."""
    trials = 200

    def run():
        rng = np.random.default_rng(2)
        violations = 0
        for _ in range(trials):
            vectors = rng.standard_normal((N, DIMENSION))
            selections = {
                m: set(
                    MultiKrum(f=F, m=m).aggregate_detailed(vectors).selected.tolist()
                )
                for m in (1, 3, 6, 8)
            }
            if not (
                selections[1] <= selections[3] <= selections[6] <= selections[8]
            ):
                violations += 1
        return violations

    violations = run_once(benchmark, run)
    emit(
        format_table(
            ["trials", "nesting violations"],
            [[trials, violations]],
            title="Ablation — Multi-Krum selected sets are nested in m",
        )
    )
    assert violations == 0


def bench_ablation_score_gap_grows_with_attack_distance(benchmark):
    """The score margin between honest and Byzantine proposals grows with
    the attack magnitude — the mechanism behind Krum's filtering."""

    def run():
        rng = np.random.default_rng(3)
        rows = []
        for magnitude in (1.0, 10.0, 100.0, 1000.0):
            margins = []
            for _ in range(100):
                honest = rng.standard_normal((N - F, DIMENSION))
                byzantine = magnitude * np.ones((F, DIMENSION))
                scores = krum_scores(np.vstack([honest, byzantine]), F)
                margins.append(scores[N - F :].min() / max(scores[: N - F].max(), 1e-12))
            rows.append((magnitude, float(np.median(margins))))
        return rows

    rows = run_once(benchmark, run)
    emit(
        format_table(
            ["attack magnitude", "median byz/honest score ratio"],
            [list(r) for r in rows],
            title="Ablation — score margin vs attack distance",
        )
    )
    ratios = [r for _m, r in rows]
    assert all(a < b for a, b in zip(ratios, ratios[1:])), (
        "score margin must grow with attack magnitude"
    )
