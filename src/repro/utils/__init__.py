"""Shared low-level utilities: RNG streams, validation, linear algebra, timing."""

from repro.utils.linalg import (
    flatten_arrays,
    pairwise_sq_distances,
    stack_vectors,
    unflatten_array,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Timer, fit_power_law
from repro.utils.validation import (
    check_finite,
    check_positive_int,
    check_probability,
    check_vector_stack,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_finite",
    "check_positive_int",
    "check_probability",
    "check_vector_stack",
    "flatten_arrays",
    "unflatten_array",
    "pairwise_sq_distances",
    "stack_vectors",
    "Timer",
    "fit_power_law",
]
