"""The parameter server.

Holds the parameter vector, applies the choice function F, and performs
the SGD update ``x_{t+1} = x_t − γ_t · F(V_1, ..., V_n)``.  The server is
assumed reliable (footnote 2 of the paper).

Synchronous by default: every message must belong to the current round.
``max_staleness`` relaxes that barrier to a bounded-staleness window —
a round-``t`` step accepts messages tagged with any round in
``[t − max_staleness, t]`` (the stale-synchronous-parallel contract),
keeps the parameter vectors of the last ``max_staleness + 1`` rounds
so workers (and filters) can reference what a stale proposal was
computed against, and hands staleness-aware aggregators (the
Kardam-style :class:`~repro.core.staleness.StalenessAwareAggregator`)
the per-proposal staleness vector alongside the stack.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.aggregator import AggregationResult, Aggregator
from repro.core.staleness import StalenessAwareAggregator
from repro.distributed.messages import GradientMessage, ParameterBroadcast
from repro.distributed.schedules import LearningRateSchedule
from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    SimulationError,
)
from repro.utils.linalg import stack_vectors

__all__ = ["ParameterServer"]


class ParameterServer:
    """Round-based parameter server with a pluggable choice function.

    ``max_staleness = 0`` (the default) is the paper's synchronous
    server; a positive bound accepts bounded-stale messages.
    """

    def __init__(
        self,
        initial_params: np.ndarray,
        aggregator: Aggregator,
        schedule: LearningRateSchedule,
        *,
        halt_on_nonfinite: bool = False,
        max_staleness: int = 0,
    ):
        params = np.asarray(initial_params, dtype=np.float64)
        if params.ndim != 1:
            raise DimensionMismatchError(
                f"initial_params must be 1-d, got shape {params.shape}"
            )
        if int(max_staleness) < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0, got {max_staleness}"
            )
        self._params = params.copy()
        self.aggregator = aggregator
        self.schedule = schedule
        self.round_index = 0
        #: When true, a non-finite parameter vector after an update raises
        #: ``SimulationError`` instead of silently training on NaN — the
        #: operational guard a production server would run with.  Off by
        #: default so divergence experiments can observe the blow-up.
        self.halt_on_nonfinite = bool(halt_on_nonfinite)
        #: The bounded-staleness window: a round-t step accepts messages
        #: for rounds in [t − max_staleness, t].
        self.max_staleness = int(max_staleness)
        # Parameter vectors of the last max_staleness + 1 rounds;
        # history[-1] is x_t for the current round t.  Kept even at
        # max_staleness = 0 so staleness-aware aggregators see the same
        # ``used_params`` in synchronous and degenerate-async runs.
        self._history: deque[np.ndarray] = deque(maxlen=self.max_staleness + 1)
        self._history.append(self._params.copy())
        #: Worker indices the choice function selected in the most recent
        #: completed round (``None`` before the first step).  Public
        #: feedback channel for defense-probing adversaries.
        self.last_selected: np.ndarray | None = None

    @property
    def params(self) -> np.ndarray:
        """The current parameter vector x_t (a defensive copy)."""
        return self._params.copy()

    @property
    def dimension(self) -> int:
        return int(self._params.shape[0])

    def params_at(self, round_index: int) -> np.ndarray:
        """The parameter vector broadcast at the start of ``round_index``.

        Only the bounded window ``[current − max_staleness, current]``
        is retained; asking outside it raises ``SimulationError``.
        """
        offset = self.round_index - int(round_index)
        if offset < 0 or offset >= len(self._history):
            raise SimulationError(
                f"round {round_index} is outside the retained window "
                f"[{self.round_index - len(self._history) + 1}, "
                f"{self.round_index}] (max_staleness={self.max_staleness})"
            )
        return self._history[-1 - offset].copy()

    def broadcast(self) -> ParameterBroadcast:
        """Start a round: publish x_t to all workers."""
        return ParameterBroadcast(round_index=self.round_index, params=self.params)

    def step(self, messages: list[GradientMessage]) -> AggregationResult:
        """Finish a round: aggregate the n proposals and update x.

        Messages must carry round indices inside the staleness window
        ``[current − max_staleness, current]`` (with the default
        ``max_staleness = 0`` that is exactly the synchronous contract:
        every message belongs to the current round).  Proposals are
        ordered by worker id before aggregation so that worker
        identifiers align with row indices (the tie-break of Krum's
        footnote 3 depends on this ordering).
        """
        if not messages:
            raise SimulationError("server received no gradient messages")
        oldest = self.round_index - self.max_staleness
        rejected = [
            m
            for m in messages
            if m.round_index > self.round_index or m.round_index < oldest
        ]
        if rejected:
            raise SimulationError(
                f"round {self.round_index} received messages for rounds "
                f"{sorted({m.round_index for m in rejected})} outside the "
                f"staleness window [{oldest}, {self.round_index}]"
            )
        ids = [m.worker_id for m in messages]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate worker ids in round: {sorted(ids)}")
        ordered = sorted(messages, key=lambda m: m.worker_id)
        stack = stack_vectors([m.vector for m in ordered])
        if stack.shape[1] != self.dimension:
            raise DimensionMismatchError(
                f"proposals have dimension {stack.shape[1]}, server expects "
                f"{self.dimension}"
            )
        if isinstance(self.aggregator, StalenessAwareAggregator):
            staleness = np.asarray(
                [self.round_index - m.round_index for m in ordered],
                dtype=np.int64,
            )
            used_params = np.stack(
                [self.params_at(m.round_index) for m in ordered]
            )
            result = self.aggregator.aggregate_detailed_stale(
                stack, staleness, used_params=used_params
            )
        else:
            result = self.aggregator.aggregate_detailed(stack)
        rate = self.schedule(self.round_index)
        self._params = self._params - rate * result.vector
        if self.halt_on_nonfinite and not np.all(np.isfinite(self._params)):
            raise SimulationError(
                f"parameters became non-finite at round {self.round_index} "
                f"(aggregator {self.aggregator.name}); a Byzantine proposal "
                f"reached the update"
            )
        self.round_index += 1
        self._history.append(self._params.copy())
        self.last_selected = np.asarray(result.selected, dtype=np.int64).copy()
        return result
