"""Event-driven decentralized training over a communication graph.

``GossipSimulation`` drops the parameter server entirely: every node
keeps *local* parameters, trains on them, disseminates its proposal to
its graph neighbors (per-edge delays via the
:class:`~repro.distributed.delays.DelaySchedule` registry), and
aggregates whatever it has heard with a registered choice function at a
*local* Byzantine bound — the count of adversarial ids inside its
current in-neighborhood.  Byzantine nodes craft their proposals through
the worker-attack registry, optionally equivocating (a different
message per receiving edge).

The core is a heap-ordered event queue: each round expands into
per-node ``train`` / ``craft`` / ``gossip`` / ``aggregate`` events plus
one ``record`` event that lazily schedules the next round — there is no
per-round barrier object, which is what lets the engine run
thousand-node graphs (``BENCH_topology.json``).  Phase order within a
round is fixed (train < craft < gossip < aggregate < record), so a
zero-delay edge delivers inside its own round while ``τ ≥ 1`` messages
park in a pending queue until their arrival round.

Degenerate identity: on the ``complete`` graph with no edge delays,
every node hears every proposal fresh, the local ``f`` equals the
global ``f``, and each node's trajectory is bit for bit the server
path's — ``tests/topology/test_differential.py`` pins this against
:class:`~repro.distributed.TrainingSimulation` and both grid executors.
"""

from __future__ import annotations

import copy
import heapq
from collections.abc import Callable, Sequence
from dataclasses import replace

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.core.aggregator import Aggregator
from repro.core.staleness import StalenessAwareAggregator
from repro.distributed.delays import DelaySchedule, make_delay_schedule
from repro.distributed.metrics import RoundRecord, TrainingHistory
from repro.distributed.schedules import LearningRateSchedule
from repro.exceptions import ConfigurationError, SimulationError
from repro.gradients.base import GradientEstimator
from repro.topology.base import Topology
from repro.topology.registry import make_topology
from repro.utils.linalg import stack_vectors
from repro.utils.rng import SeedLike, spawn_generators

__all__ = ["GossipSimulation"]

Evaluator = Callable[[np.ndarray], dict[str, float]]

# Phase order inside one round of the event queue.  GOSSIP must precede
# AGGREGATE so zero-delay edges deliver within their own round, and
# CRAFT must follow TRAIN so the omniscient adversary sees this round's
# honest proposals — the same information order as the server path.
_TRAIN, _CRAFT, _GOSSIP, _AGGREGATE, _RECORD = range(5)


def _max_pairwise_distance(stack: np.ndarray) -> float:
    """Largest pairwise euclidean distance between rows (chunked, so a
    thousand-node stack never materializes an (n, n, d) tensor)."""
    worst = 0.0
    for i in range(stack.shape[0] - 1):
        d = float(np.linalg.norm(stack[i + 1 :] - stack[i], axis=1).max())
        if d > worst:
            worst = d
    return worst


class GossipSimulation:
    """Serverless Byzantine-tolerant SGD over a communication graph.

    Parameters
    ----------
    topology:
        A :class:`~repro.topology.base.Topology` instance or registry
        name; bound to the node count with a stream spawned from the
        root seed.
    aggregator:
        The choice function each node runs locally.  Stateful rules
        (e.g. ``kardam``) are deep-copied per node so no state leaks
        between nodes; supply ``aggregator_builder`` to additionally
        rebuild the rule at each node's *local* ``f``.
    aggregator_builder:
        Optional ``f_local -> Aggregator`` factory.  When given, each
        (node, local-f) pair gets its own instance built at that bound —
        the engine wires this from the cell's registry spec so Krum-style
        rules defend against the adversaries actually inside each
        neighborhood.  Without it the fixed ``aggregator`` (at its
        declared ``f``) is copied per node.
    schedule / honest_estimators / initial_params / num_byzantine /
    attack / byzantine_slots / true_gradient_fn / evaluate /
    halt_on_nonfinite / seed:
        As in :class:`~repro.distributed.TrainingSimulation`.
    edge_delay:
        A :class:`~repro.distributed.delays.DelaySchedule` (or registry
        name) queried per *directed edge* — ``staleness(edge_id, t)``
        with ``edge_id = sender · n + receiver`` — giving the arrival
        lag of each message; ``None`` delivers every message inside its
        round.
    equivocate:
        When true, a Byzantine node crafts a *different* message per
        receiving honest neighbor (the attack context's ``receiver``
        field names the target); by default all edges carry one shared
        crafted proposal, matching the server path's single submission.
    """

    def __init__(
        self,
        *,
        topology: Topology | str,
        aggregator: Aggregator,
        schedule: LearningRateSchedule,
        honest_estimators: Sequence[GradientEstimator],
        initial_params: np.ndarray,
        num_byzantine: int = 0,
        attack: Attack | None = None,
        byzantine_slots: str | Sequence[int] = "last",
        aggregator_builder: Callable[[int], Aggregator] | None = None,
        edge_delay: DelaySchedule | str | None = None,
        equivocate: bool = False,
        true_gradient_fn: Callable[[np.ndarray], np.ndarray] | None = None,
        evaluate: Evaluator | None = None,
        halt_on_nonfinite: bool = False,
        seed: SeedLike = 0,
    ):
        if num_byzantine < 0:
            raise ConfigurationError(
                f"num_byzantine must be >= 0, got {num_byzantine}"
            )
        if num_byzantine > 0 and attack is None:
            raise ConfigurationError(
                f"num_byzantine={num_byzantine} requires an attack"
            )
        if num_byzantine == 0 and attack is not None:
            raise ConfigurationError(
                "an attack was supplied but num_byzantine=0"
            )
        if not honest_estimators:
            raise ConfigurationError("need at least one honest estimator")

        self.num_honest = len(honest_estimators)
        self.num_byzantine = int(num_byzantine)
        self.num_nodes = self.num_honest + self.num_byzantine

        self.byzantine_ids = self._resolve_slots(byzantine_slots)
        byzantine_set = set(self.byzantine_ids)
        self.honest_ids = [
            i for i in range(self.num_nodes) if i not in byzantine_set
        ]
        #: The node whose trajectory the round records report — the
        #: lowest honest id, matching the server path's single history.
        self.reference_node = self.honest_ids[0]

        # Stream layout is prefix-stable with TrainingSimulation's:
        # honest nodes, the attack stream, the edge-delay bind stream,
        # one reserved slot (the server path's server-attack stream —
        # serverless here, but keeping it pins the later streams' spawn
        # positions), and the topology bind stream.
        streams = spawn_generators(seed, self.num_honest + 4)
        self.attack_rng = streams[self.num_honest]
        self._node_rng = dict(zip(self.honest_ids, streams[: self.num_honest]))
        self._estimators = dict(zip(self.honest_ids, honest_estimators))

        if isinstance(edge_delay, str):
            edge_delay = make_delay_schedule(edge_delay)
        if edge_delay is not None and not isinstance(edge_delay, DelaySchedule):
            raise ConfigurationError(
                f"edge_delay must be a DelaySchedule, registry name or "
                f"None, got {type(edge_delay).__name__}"
            )
        self.edge_delay = (
            None
            if edge_delay is None
            else edge_delay.bind(streams[self.num_honest + 1])
        )

        if isinstance(topology, str):
            topology = make_topology(topology)
        if not isinstance(topology, Topology):
            raise ConfigurationError(
                f"topology must be a Topology or registry name, got "
                f"{type(topology).__name__}"
            )
        self.topology = topology.bind(
            self.num_nodes, streams[self.num_honest + 3]
        )

        params = np.asarray(initial_params, dtype=np.float64)
        if params.ndim != 1:
            raise ConfigurationError(
                f"initial_params must be 1-d, got shape {params.shape}"
            )
        dims = {est.dimension for est in honest_estimators}
        if dims != {params.shape[0]}:
            raise ConfigurationError(
                f"estimator dimensions {sorted(dims)} do not match parameter "
                f"dimension {params.shape[0]}"
            )
        self.dimension = int(params.shape[0])
        # One local vector per node; Byzantine entries stay at x_0 (the
        # adversary needs no local state — it crafts from the context).
        self._node_params = [params.copy() for _ in range(self.num_nodes)]

        self._aggregator = aggregator
        self._aggregator_builder = aggregator_builder
        aggregator.check_tolerance(self.num_nodes)
        self._rules: dict[tuple[int, int], Aggregator] = {}

        self.schedule = schedule
        self.attack = attack
        if self.attack is not None:
            self.attack.reset()
        self.equivocate = bool(equivocate)
        self.true_gradient_fn = true_gradient_fn
        self.evaluate = evaluate
        self.halt_on_nonfinite = bool(halt_on_nonfinite)

        # Event-queue state.  _inbox[v]: sender -> (computed_round,
        # vector, params-at-computation); _pending[v]: not-yet-arrived
        # (arrival, computed_round, sender, vector, params) messages.
        self._events: list[tuple[int, int, int]] = []
        self._inbox: list[dict[int, tuple[int, np.ndarray, np.ndarray]]] = [
            {} for _ in range(self.num_nodes)
        ]
        self._pending: list[list[tuple]] = [[] for _ in range(self.num_nodes)]
        self._gradients: dict[int, np.ndarray] = {}
        self._crafted: np.ndarray | None = None
        self._crafted_by_receiver: dict[int, np.ndarray] = {}
        self._craft_params: np.ndarray | None = None
        self._round_results: dict[int, tuple] = {}
        # Union of every honest node's selected member ids last round
        # (None before the first round) — feeds the attack context's
        # selected_last_round exactly as the server's last_selected does.
        self._selected_union: np.ndarray | None = None
        self._round = 0

    @classmethod
    def from_template(
        cls,
        simulation,
        *,
        topology: Topology | str,
        aggregator_builder: Callable[[int], Aggregator] | None = None,
        edge_delay: DelaySchedule | str | None = None,
        equivocate: bool = False,
        seed: SeedLike = 0,
    ) -> "GossipSimulation":
        """Build a gossip simulation from an unstepped server-path one.

        ``simulation`` is a freshly built
        :class:`~repro.distributed.TrainingSimulation` on the degenerate
        tier — its estimators, cast, schedule, initial parameters,
        attack and evaluators are reused verbatim, so the two engines
        start from the same ``x_0`` and draw the same gradient noise.
        ``seed`` must repeat the template's root seed for that parity.
        """
        server = simulation.server
        if server.round_index != 0:
            raise ConfigurationError(
                "from_template needs an unstepped simulation (its current "
                f"round is {server.round_index}); build a fresh template"
            )
        if server.tier_active or server.num_shards > 1:
            raise ConfigurationError(
                "the replicated/sharded server tier and gossip topologies "
                "are mutually exclusive — build the template on the "
                "degenerate tier"
            )
        if simulation.is_async:
            raise ConfigurationError(
                "gossip models lag per edge (edge_delay), not per worker; "
                "build the template synchronously"
            )
        return cls(
            topology=topology,
            aggregator=server.aggregator,
            schedule=server.schedule,
            honest_estimators=[w.estimator for w in simulation.honest_workers],
            initial_params=server.params,
            num_byzantine=simulation.num_byzantine,
            attack=simulation.attack,
            byzantine_slots=(
                list(simulation.byzantine_ids)
                if simulation.byzantine_ids
                else "last"
            ),
            aggregator_builder=aggregator_builder,
            edge_delay=edge_delay,
            equivocate=equivocate,
            true_gradient_fn=simulation.true_gradient_fn,
            evaluate=simulation.evaluate,
            halt_on_nonfinite=server.halt_on_nonfinite,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Cast and state accessors

    def _resolve_slots(self, spec: str | Sequence[int]) -> list[int]:
        n, f = self.num_nodes, self.num_byzantine
        if isinstance(spec, str):
            if spec == "last":
                return list(range(n - f, n))
            if spec == "first":
                return list(range(f))
            raise ConfigurationError(
                f"byzantine_slots must be 'first', 'last' or explicit ids, "
                f"got {spec!r}"
            )
        slots = sorted(int(s) for s in spec)
        if len(slots) != f:
            raise ConfigurationError(
                f"expected {f} byzantine slots, got {len(slots)}"
            )
        if len(set(slots)) != len(slots) or any(s < 0 or s >= n for s in slots):
            raise ConfigurationError(
                f"byzantine slots must be distinct ids in [0, {n}), got {slots}"
            )
        return slots

    @property
    def params(self) -> np.ndarray:
        """The reference node's current parameters (a defensive copy)."""
        return self._node_params[self.reference_node].copy()

    @property
    def honest_params(self) -> np.ndarray:
        """The ``(num_honest, d)`` stack of honest local parameters."""
        return np.stack([self._node_params[i] for i in self.honest_ids])

    def node_params(self, node: int) -> np.ndarray:
        """Node ``node``'s current local parameters (a defensive copy)."""
        if not 0 <= int(node) < self.num_nodes:
            raise ConfigurationError(
                f"node {node} outside [0, {self.num_nodes})"
            )
        return self._node_params[int(node)].copy()

    def consensus_metrics(self) -> dict[str, float]:
        """Disagreement across the honest nodes' local parameters.

        ``consensus_error`` is the mean distance to the honest
        barycenter; ``disagreement`` the largest honest pairwise
        distance (both 0 exactly on the complete zero-delay graph, where
        all honest trajectories coincide).
        """
        stack = self.honest_params
        center = stack.mean(axis=0)
        return {
            "consensus_error": float(
                np.mean(np.linalg.norm(stack - center, axis=1))
            ),
            "disagreement": _max_pairwise_distance(stack),
        }

    def _rule_for(self, node: int, f_local: int) -> Aggregator:
        key = (node, f_local)
        rule = self._rules.get(key)
        if rule is None:
            if self._aggregator_builder is not None:
                rule = self._aggregator_builder(f_local)
            else:
                # Per-node copies so stateful rules (kardam windows)
                # never share state across nodes; the declared f stands.
                rule = copy.deepcopy(self._aggregator)
            self._rules[key] = rule
        return rule

    def _edge_staleness(self, sender: int, receiver: int, t: int) -> int:
        if self.edge_delay is None:
            return 0
        edge_id = sender * self.num_nodes + receiver
        tau = int(self.edge_delay.staleness(edge_id, t))
        if tau < 0:
            raise SimulationError(
                f"edge delay produced negative staleness {tau} for edge "
                f"{sender}->{receiver} at round {t}"
            )
        # Nothing can arrive staler than the start of training — the
        # same min(τ, t) clamp TrainingSimulation applies, so round 0
        # always delivers fresh and krum-style local tolerance holds.
        return min(tau, t)

    # ------------------------------------------------------------------
    # Event handlers

    def _push_round(self, t: int) -> None:
        push = heapq.heappush
        for v in self.honest_ids:
            push(self._events, (t, _TRAIN, v))
        if self.num_byzantine > 0:
            push(self._events, (t, _CRAFT, 0))
        for v in range(self.num_nodes):
            push(self._events, (t, _GOSSIP, v))
        for v in self.honest_ids:
            push(self._events, (t, _AGGREGATE, v))
        push(self._events, (t, _RECORD, 0))

    def _handle_train(self, t: int, v: int) -> None:
        estimator = self._estimators[v]
        self._gradients[v] = estimator.estimate(
            self._node_params[v], self._node_rng[v]
        )

    def _attack_context(self, t: int, receiver: int | None) -> AttackContext:
        ref_params = self._node_params[self.reference_node].copy()
        return AttackContext(
            round_index=t,
            params=ref_params,
            honest_gradients=stack_vectors(
                [self._gradients[i] for i in self.honest_ids]
            ),
            byzantine_indices=np.asarray(self.byzantine_ids, dtype=np.int64),
            honest_indices=np.asarray(self.honest_ids, dtype=np.int64),
            num_workers=self.num_nodes,
            rng=self.attack_rng,
            aggregator=self._aggregator,
            true_gradient=(
                self.true_gradient_fn(ref_params)
                if self.true_gradient_fn is not None
                else None
            ),
            # The neighbor view: each honest node's *local* parameters
            # (on the complete zero-delay graph these coincide with
            # ``params``, so server-path attacks behave identically).
            honest_params=self.honest_params,
            selected_last_round=(
                np.isin(
                    np.asarray(self.byzantine_ids, dtype=np.int64),
                    self._selected_union,
                )
                if self._selected_union is not None
                else None
            ),
            byzantine_neighbors=tuple(
                self.topology.neighbors(b, t) for b in self.byzantine_ids
            ),
            receiver=receiver,
        )

    def _handle_craft(self, t: int) -> None:
        assert self.attack is not None
        self._crafted_by_receiver = {}
        self._crafted = None
        shared = self._attack_context(t, None)
        self._craft_params = shared.params
        if not self.equivocate:
            self._crafted = self.attack.craft(shared)
            return
        # Per-edge equivocation: one craft per honest receiver adjacent
        # to at least one Byzantine node this round, in id order (the
        # attack stream advances deterministically).
        receivers = sorted(
            {
                int(u)
                for neighbors in shared.byzantine_neighbors or ()
                for u in neighbors
                if int(u) in self._node_rng
            }
        )
        for u in receivers:
            self._crafted_by_receiver[u] = self.attack.craft(
                replace(shared, receiver=u)
            )

    def _deliver(
        self,
        receiver: int,
        sender: int,
        computed: int,
        vector: np.ndarray,
        used_params: np.ndarray,
    ) -> None:
        current = self._inbox[receiver].get(sender)
        if current is None or computed > current[0]:
            self._inbox[receiver][sender] = (computed, vector, used_params)

    def _handle_gossip(self, t: int, v: int) -> None:
        is_byzantine = v not in self._node_rng
        if is_byzantine:
            if self.num_byzantine == 0:
                return
            row = self.byzantine_ids.index(v)
            used_params = self._craft_params
        else:
            vector = self._gradients[v]
            used_params = self._node_params[v]
        for u in self.topology.neighbors(v, t):
            u = int(u)
            if u not in self._node_rng:
                continue  # Byzantine nodes do not aggregate
            if is_byzantine:
                crafted = (
                    self._crafted_by_receiver.get(u)
                    if self.equivocate
                    else self._crafted
                )
                if crafted is None:
                    continue
                vector = crafted[row]
            tau = self._edge_staleness(v, u, t)
            if tau == 0:
                self._deliver(u, v, t, vector, used_params)
            else:
                self._pending[u].append((t + tau, t, v, vector, used_params))

    def _handle_aggregate(self, t: int, v: int) -> None:
        if self._pending[v]:
            still_pending = []
            for entry in self._pending[v]:
                if entry[0] <= t:
                    self._deliver(v, *entry[1:])
                else:
                    still_pending.append(entry)
            self._pending[v] = still_pending

        inbox = self._inbox[v]
        members = [v]
        entries = [(t, self._gradients[v], self._node_params[v])]
        for u in self.topology.neighbors(v, t):
            entry = inbox.get(int(u))
            if entry is not None:
                members.append(int(u))
                entries.append(entry)
        order = np.argsort(members, kind="stable")
        member_ids = [members[i] for i in order]
        stack = stack_vectors([entries[i][1] for i in order])
        f_local = sum(1 for m in member_ids if m not in self._node_rng)

        rule = self._rule_for(v, f_local)
        rule.check_tolerance(len(member_ids))
        if isinstance(rule, StalenessAwareAggregator):
            staleness = np.asarray(
                [t - entries[i][0] for i in order], dtype=np.int64
            )
            used_params = np.stack([entries[i][2] for i in order])
            result = rule.aggregate_detailed_stale(
                stack, staleness, used_params=used_params
            )
        else:
            result = rule.aggregate_detailed(stack)

        rate = self.schedule(t)
        self._node_params[v] = self._node_params[v] - rate * result.vector
        if self.halt_on_nonfinite and not np.all(
            np.isfinite(self._node_params[v])
        ):
            raise SimulationError(
                f"parameters of node {v} became non-finite at round {t} "
                f"(aggregator {rule.name}); a Byzantine proposal reached "
                f"the update"
            )
        selected_ids = tuple(
            int(member_ids[i]) for i in np.asarray(result.selected, dtype=np.int64)
        )
        self._round_results[v] = (result, selected_ids, rate)

    def _record(self, t: int) -> RoundRecord:
        result, selected_ids, rate = self._round_results[self.reference_node]
        byzantine_set = set(self.byzantine_ids)
        record = RoundRecord(
            round_index=t,
            learning_rate=rate,
            aggregate_norm=float(np.linalg.norm(result.vector)),
            params_norm=float(
                np.linalg.norm(self._node_params[self.reference_node])
            ),
            selected=selected_ids,
            byzantine_selected=sum(
                1 for i in selected_ids if i in byzantine_set
            ),
        )
        # Feed next round's selection feedback: a Byzantine id counts as
        # selected if *any* honest node selected it (on the complete
        # graph every node selects identically, recovering the server's
        # last_selected verdict).
        all_selected = [
            ids
            for _, ids, _ in (
                self._round_results[v] for v in self.honest_ids
            )
        ]
        flat = sorted({i for ids in all_selected for i in ids})
        self._selected_union = np.asarray(flat, dtype=np.int64)
        self._round_results = {}
        self._gradients = {}
        return record

    # ------------------------------------------------------------------
    # Driver

    def run(self, num_rounds: int, *, eval_every: int = 10) -> TrainingHistory:
        """Drive the event queue for ``num_rounds`` rounds.

        Returns the reference node's history; evaluated rounds also
        carry the cluster-wide ``consensus_error`` and ``disagreement``
        metrics in ``extras``.  The final round is always evaluated.
        """
        if num_rounds < 1:
            raise ConfigurationError(
                f"num_rounds must be >= 1, got {num_rounds}"
            )
        if eval_every < 1:
            raise ConfigurationError(
                f"eval_every must be >= 1, got {eval_every}"
            )
        history = TrainingHistory()
        start = self._round
        stop = start + num_rounds
        self._push_round(start)
        while self._events:
            t, phase, node = heapq.heappop(self._events)
            if phase == _TRAIN:
                self._handle_train(t, node)
            elif phase == _CRAFT:
                self._handle_craft(t)
            elif phase == _GOSSIP:
                self._handle_gossip(t, node)
            elif phase == _AGGREGATE:
                self._handle_aggregate(t, node)
            else:
                record = self._record(t)
                if (t - start) % eval_every == 0 or t == stop - 1:
                    record = self._evaluate_record(record)
                history.append(record)
                self._round = t + 1
                if t + 1 < stop:
                    self._push_round(t + 1)
        return history

    def _evaluate_record(self, record: RoundRecord) -> RoundRecord:
        params = self._node_params[self.reference_node]
        loss = accuracy = grad_norm = None
        extras: dict[str, float] = {}
        if self.evaluate is not None:
            metrics = dict(self.evaluate(params.copy()))
            loss = metrics.pop("loss", None)
            accuracy = metrics.pop("accuracy", None)
            grad_norm = metrics.pop("grad_norm", None)
            extras = {k: float(v) for k, v in metrics.items()}
        if grad_norm is None and self.true_gradient_fn is not None:
            grad_norm = float(np.linalg.norm(self.true_gradient_fn(params)))
        extras.update(self.consensus_metrics())
        return RoundRecord(
            round_index=record.round_index,
            learning_rate=record.learning_rate,
            aggregate_norm=record.aggregate_norm,
            params_norm=record.params_norm,
            selected=record.selected,
            byzantine_selected=record.byzantine_selected,
            loss=None if loss is None else float(loss),
            accuracy=None if accuracy is None else float(accuracy),
            grad_norm=None if grad_norm is None else float(grad_norm),
            extras=extras,
        )
