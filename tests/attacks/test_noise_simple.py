"""Tests for Gaussian, sign-flip, crash and straggler attacks."""

import numpy as np
import pytest

from repro.attacks.random_noise import GaussianAttack
from repro.attacks.simple import CrashAttack, SignFlipAttack, StragglerAttack
from repro.exceptions import ConfigurationError
from tests.attacks.test_base import make_context


class TestGaussianAttack:
    def test_shape_and_scale(self, rng):
        ctx = make_context(rng, num_byzantine=4)
        out = GaussianAttack(sigma=200.0).craft(ctx)
        assert out.shape == (4, 4)
        assert out.std() > 50.0

    def test_mean_parameter(self, rng):
        ctx = make_context(rng, num_byzantine=50, dimension=30)
        out = GaussianAttack(sigma=1.0, mean=10.0).craft(ctx)
        assert out.mean() == pytest.approx(10.0, abs=0.5)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            GaussianAttack(sigma=-1.0)


class TestSignFlipAttack:
    def test_uses_true_gradient_when_available(self, rng):
        gradient = np.array([1.0, -2.0, 3.0, 0.5])
        ctx = make_context(rng, true_gradient=gradient)
        out = SignFlipAttack(scale=2.0).craft(ctx)
        np.testing.assert_allclose(out, np.tile(-2.0 * gradient, (2, 1)))

    def test_falls_back_to_honest_mean(self, rng):
        ctx = make_context(rng)
        out = SignFlipAttack(scale=1.0).craft(ctx)
        np.testing.assert_allclose(out[0], -ctx.honest_mean)

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ConfigurationError):
            SignFlipAttack(scale=0.0)


class TestCrashAttack:
    def test_all_zeros(self, rng):
        ctx = make_context(rng, num_byzantine=3)
        out = CrashAttack().craft(ctx)
        np.testing.assert_array_equal(out, np.zeros((3, 4)))


class TestStragglerAttack:
    def test_replays_old_mean(self, rng):
        attack = StragglerAttack(delay=2)
        means = []
        for round_index in range(5):
            honest = np.full((6, 3), float(round_index))
            ctx = make_context(
                rng,
                num_honest=6,
                num_byzantine=1,
                dimension=3,
                honest_gradients=honest,
                byzantine_indices=np.array([6]),
                honest_indices=np.arange(6),
                num_workers=7,
                round_index=round_index,
            )
            out = attack.craft(ctx)
            means.append(out[0, 0])
        # After warm-up the replayed value lags by exactly `delay` rounds.
        assert means[4] == pytest.approx(2.0)

    def test_reset_clears_history(self, rng):
        attack = StragglerAttack(delay=3)
        ctx = make_context(rng)
        attack.craft(ctx)
        attack.reset()
        assert attack._history == []

    def test_rejects_bad_delay(self):
        with pytest.raises(ConfigurationError):
            StragglerAttack(delay=0)
