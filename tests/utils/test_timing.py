"""Tests for repro.utils.timing."""

import numpy as np
import pytest

from repro.utils.timing import Timer, fit_power_law


class TestTimer:
    def test_accumulates_samples(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                sum(range(1000))
        assert len(timer.samples) == 3
        assert timer.total_seconds > 0
        assert timer.mean_seconds == pytest.approx(timer.total_seconds / 3)
        assert timer.min_seconds <= timer.mean_seconds

    def test_empty_timer(self):
        timer = Timer()
        assert timer.mean_seconds == 0.0
        assert timer.min_seconds == 0.0


class TestFitPowerLaw:
    def test_recovers_quadratic_exponent(self):
        sizes = np.array([10.0, 20.0, 40.0, 80.0])
        times = 3.0 * sizes**2
        assert fit_power_law(sizes, times) == pytest.approx(2.0)

    def test_recovers_linear_exponent(self):
        sizes = np.array([1.0, 2.0, 4.0, 8.0])
        times = 0.5 * sizes
        assert fit_power_law(sizes, times) == pytest.approx(1.0)

    def test_tolerates_noise(self, rng):
        sizes = np.logspace(1, 3, 10)
        times = 2.0 * sizes**1.5 * np.exp(rng.normal(0, 0.01, 10))
        assert fit_power_law(sizes, times) == pytest.approx(1.5, abs=0.1)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0]), np.array([1.0]))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0]), np.array([0.0, 1.0]))
