"""Tests for experiment configuration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import SGDExperimentConfig


def _config(**overrides):
    defaults = dict(
        num_workers=11,
        num_byzantine=2,
        num_rounds=50,
        aggregator="krum",
        aggregator_kwargs={"f": 2},
        attack="gaussian",
    )
    defaults.update(overrides)
    return SGDExperimentConfig(**defaults)


class TestSGDExperimentConfig:
    def test_valid_config(self):
        config = _config()
        assert config.num_honest == 9

    def test_rejects_f_ge_n(self):
        with pytest.raises(ConfigurationError):
            _config(num_byzantine=11)

    def test_rejects_byzantine_without_attack(self):
        with pytest.raises(ConfigurationError, match="attack"):
            _config(attack=None)

    def test_f_zero_without_attack_is_fine(self):
        config = _config(num_byzantine=0, attack=None)
        assert config.num_honest == 11

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            _config(learning_rate=0.0)

    def test_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError):
            _config(num_rounds=0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            _config(batch_size=0)

    def test_frozen(self):
        config = _config()
        with pytest.raises(AttributeError):
            config.num_workers = 5


class TestPartitionKnobs:
    def test_defaults(self):
        config = _config()
        assert config.partition == "iid"
        assert config.dirichlet_alpha == 0.5

    def test_rejects_unknown_partition(self):
        with pytest.raises(ConfigurationError, match="partition"):
            _config(partition="striped")

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ConfigurationError, match="dirichlet_alpha"):
            _config(dirichlet_alpha=0.0)
