"""Unit tests for the adaptive adversaries.

Each attack is keyed to one defensive mechanism, so the tests pin the
adaptive logic itself: the staleness-gaming amplification law per
dampening mode, the mimicry attacker's rate budget, and the probe's
scale walk driven by ``selected_last_round`` feedback.
"""

import numpy as np
import pytest

from repro.attacks import (
    BanditProbingAttack,
    DefenseProbingAttack,
    LipschitzMimicryAttack,
    SignFlipAttack,
    StalenessGamingAttack,
    make_attack,
)
from repro.exceptions import ConfigurationError

from tests.attacks.test_base import make_context


class TestStalenessGaming:
    def test_sync_round_is_plain_sign_flip(self, rng):
        """No staleness info ⇒ τ = 0 ⇒ Λ = 1 ⇒ −scale · ∇Q."""
        gradient = np.array([1.0, -2.0, 0.5, 3.0])
        ctx = make_context(rng, true_gradient=gradient)
        out = StalenessGamingAttack(scale=2.0).craft(ctx)
        np.testing.assert_allclose(out, np.tile(-2.0 * gradient, (2, 1)))

    @pytest.mark.parametrize(
        ("dampening", "gamma", "expected"),
        [
            ("none", 0.5, [1.0, 1.0, 1.0]),
            ("inverse", 0.5, [1.0, 3.0, 6.0]),  # 1 + tau
            ("exponential", 0.5, [1.0, 4.0, 32.0]),  # gamma**-tau
        ],
    )
    def test_amplification_matches_inverse_dampening(
        self, rng, dampening, gamma, expected
    ):
        gradient = np.ones(4)
        ctx = make_context(
            rng,
            num_byzantine=3,
            byzantine_indices=np.arange(8, 11),
            num_workers=11,
            true_gradient=gradient,
            byzantine_staleness=np.array([0, 2, 5]),
        )
        out = StalenessGamingAttack(dampening=dampening, gamma=gamma).craft(ctx)
        np.testing.assert_allclose(
            out, -np.asarray(expected)[:, None] * gradient[None, :]
        )

    def test_falls_back_to_honest_mean(self, rng):
        ctx = make_context(rng)
        out = StalenessGamingAttack().craft(ctx)
        np.testing.assert_allclose(out, np.tile(-ctx.honest_mean, (2, 1)))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            StalenessGamingAttack(scale=0.0)
        with pytest.raises(ConfigurationError):
            StalenessGamingAttack(dampening="cubic")
        with pytest.raises(ConfigurationError):
            StalenessGamingAttack(dampening="exponential", gamma=0.0)


class TestLipschitzMimicry:
    def test_first_round_is_honest_mean(self, rng):
        ctx = make_context(rng, true_gradient=np.ones(4))
        out = LipschitzMimicryAttack().craft(ctx)
        np.testing.assert_allclose(out, np.tile(ctx.honest_mean, (2, 1)))

    def test_step_respects_rate_budget(self, rng):
        """After observing honest rates, the proposal's per-round movement
        never exceeds margin · quantile(rates) · displacement."""
        attack = LipschitzMimicryAttack(scale=50.0, margin=0.9)
        honest = 1.0 + 0.1 * rng.standard_normal((8, 4))
        prev_vector = None
        prev_params = None
        for t in range(6):
            params = np.full(4, 0.1 * t)
            ctx = make_context(
                rng,
                round_index=t,
                params=params,
                honest_gradients=honest + 0.01 * t,
                true_gradient=np.ones(4),
            )
            out = attack.craft(ctx)
            vector = out[0]
            np.testing.assert_allclose(out, np.tile(vector, (2, 1)))
            if prev_vector is not None and attack._rates:
                threshold = float(
                    np.quantile(np.asarray(attack._rates), attack.quantile)
                )
                displacement = float(
                    np.linalg.norm(params - prev_params)
                )
                budget = attack.margin * threshold * displacement
                step = float(np.linalg.norm(vector - prev_vector))
                assert step <= budget * (1 + 1e-9)
            prev_vector = vector
            prev_params = params

    def test_jumps_to_target_when_params_static(self, rng):
        """Zero displacement ⇒ the filter measures no rate ⇒ free jump."""
        attack = LipschitzMimicryAttack(scale=2.0)
        gradient = np.ones(4)
        for t in range(2):
            ctx = make_context(
                rng,
                round_index=t,
                params=np.zeros(4),
                true_gradient=gradient,
            )
            out = attack.craft(ctx)
        np.testing.assert_allclose(out, np.tile(-2.0 * gradient, (2, 1)))

    def test_reset_restores_first_round(self, rng):
        attack = LipschitzMimicryAttack()
        ctx = make_context(rng, true_gradient=np.ones(4))
        first = attack.craft(ctx)
        attack.craft(make_context(rng, round_index=1, true_gradient=np.ones(4)))
        attack.reset()
        again = attack.craft(ctx)
        assert first.tobytes() == again.tobytes()

    def test_params_memory_is_pruned(self, rng):
        attack = LipschitzMimicryAttack()
        for t in range(attack._PARAMS_MEMORY + 10):
            attack.craft(
                make_context(
                    rng, round_index=t, params=np.full(4, float(t))
                )
            )
        assert len(attack._params_by_round) <= attack._PARAMS_MEMORY + 1

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            LipschitzMimicryAttack(scale=-1.0)
        with pytest.raises(ConfigurationError):
            LipschitzMimicryAttack(quantile=1.5)
        with pytest.raises(ConfigurationError):
            LipschitzMimicryAttack(window=0)
        with pytest.raises(ConfigurationError):
            LipschitzMimicryAttack(margin=0.0)


class TestDefenseProbing:
    def _context(self, rng, selected, round_index=0):
        return make_context(
            rng,
            round_index=round_index,
            selected_last_round=selected,
        )

    def test_grows_on_acceptance(self, rng):
        attack = DefenseProbingAttack(grow=2.0, shrink=0.5)
        attack.craft(self._context(rng, np.array([True, False])))
        assert attack.scale == pytest.approx(2.0)
        attack.craft(self._context(rng, np.array([True, True]), 1))
        assert attack.scale == pytest.approx(4.0)

    def test_shrinks_on_rejection(self, rng):
        attack = DefenseProbingAttack(grow=2.0, shrink=0.5)
        attack.craft(self._context(rng, np.array([False, False])))
        assert attack.scale == pytest.approx(0.5)

    def test_no_feedback_keeps_scale(self, rng):
        attack = DefenseProbingAttack(initial_scale=3.0)
        attack.craft(self._context(rng, None))
        assert attack.scale == pytest.approx(3.0)

    def test_scale_is_clamped(self, rng):
        attack = DefenseProbingAttack(
            grow=10.0, shrink=0.1, min_scale=0.5, max_scale=2.0
        )
        attack.craft(self._context(rng, np.array([True, True])))
        assert attack.scale == pytest.approx(2.0)
        attack.reset()
        attack.craft(self._context(rng, np.array([False, False])))
        assert attack.scale == pytest.approx(0.5)

    def test_output_interpolates_from_honest_mean(self, rng):
        """mean + scale · (inner − mean), with the sign-flip inner."""
        attack = DefenseProbingAttack(SignFlipAttack(scale=1.0), initial_scale=0.5)
        ctx = self._context(rng, None)
        out = attack.craft(ctx)
        expected = ctx.honest_mean + 0.5 * (-ctx.honest_mean - ctx.honest_mean)
        np.testing.assert_allclose(out, np.tile(expected, (2, 1)))

    def test_reset_restores_initial_scale_and_inner(self, rng):
        attack = DefenseProbingAttack(initial_scale=1.0)
        attack.craft(self._context(rng, np.array([True, True])))
        assert attack.scale != 1.0
        attack.reset()
        assert attack.scale == pytest.approx(1.0)

    def test_registry_resolves_inner(self):
        attack = make_attack(
            "probe", {"inner": "little-is-enough", "grow": 3.0}
        )
        assert isinstance(attack, DefenseProbingAttack)
        assert attack.grow == 3.0
        assert "little-is-enough" in attack.name

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            DefenseProbingAttack(grow=0.5)
        with pytest.raises(ConfigurationError):
            DefenseProbingAttack(shrink=0.0)
        with pytest.raises(ConfigurationError):
            DefenseProbingAttack(initial_scale=-1.0)
        with pytest.raises(ConfigurationError):
            DefenseProbingAttack(min_scale=2.0, max_scale=1.0)
        with pytest.raises(ConfigurationError):
            DefenseProbingAttack(inner="sign-flip")  # type: ignore[arg-type]


class TestBanditProbing:
    def _context(self, rng, selected, round_index=0):
        return make_context(
            rng,
            round_index=round_index,
            selected_last_round=selected,
        )

    def test_warm_up_pulls_arms_in_order(self, rng):
        attack = BanditProbingAttack(arms=(0.5, 1.0, 2.0))
        accepted = np.array([True, True])
        for expected in (0.5, 1.0, 2.0):
            attack.craft(self._context(rng, accepted))
            assert attack.scale == pytest.approx(expected)

    def test_no_feedback_assigns_no_credit(self, rng):
        """Rounds without feedback (round 0, or an averaging defense
        that reports nothing) must not move the pull counts."""
        attack = BanditProbingAttack(arms=(0.5, 1.0))
        attack.craft(self._context(rng, None))
        attack.craft(self._context(rng, None, 1))
        assert attack._pulls.sum() == 0
        # Without credit the warm-up never advances past the first arm.
        assert attack.scale == pytest.approx(0.5)

    def test_concentrates_on_accepted_arm(self, rng):
        """With a defense that accepts only amplitudes <= 1, UCB play
        concentrates on the largest surviving arm."""
        attack = BanditProbingAttack(
            arms=(0.5, 1.0, 8.0), exploration=0.5
        )
        feedback = None
        for t in range(60):
            attack.craft(self._context(rng, feedback, t))
            feedback = np.array([attack.scale <= 1.0] * 2)
        pulls = dict(zip(attack.arms, attack._pulls))
        assert pulls[1.0] > pulls[8.0]
        means = attack._rewards / np.maximum(attack._pulls, 1)
        assert means[attack.arms.index(1.0)] == pytest.approx(1.0)
        assert means[attack.arms.index(8.0)] == pytest.approx(0.0)

    def test_output_interpolates_from_honest_mean(self, rng):
        """mean + arm · (inner − mean) at the first warm-up arm."""
        attack = BanditProbingAttack(SignFlipAttack(scale=1.0), arms=(0.5,))
        ctx = self._context(rng, None)
        out = attack.craft(ctx)
        expected = ctx.honest_mean + 0.5 * (-ctx.honest_mean - ctx.honest_mean)
        np.testing.assert_allclose(out, np.tile(expected, (2, 1)))

    def test_deterministic_across_instances(self, rng):
        """Same feedback stream ⇒ same arm sequence and proposals — the
        property the loop/batched identity relies on."""
        feedbacks = [None] + [
            np.array([t % 3 != 0, t % 2 == 0]) for t in range(9)
        ]
        outputs = []
        for _ in range(2):
            attack = BanditProbingAttack(arms=(0.5, 1.0, 2.0))
            inner_rng = np.random.default_rng(5)
            outs = [
                attack.craft(self._context(inner_rng, fb, t)).tobytes()
                for t, fb in enumerate(feedbacks)
            ]
            outputs.append(outs)
        assert outputs[0] == outputs[1]

    def test_reset_clears_bandit_state(self, rng):
        attack = BanditProbingAttack(arms=(0.5, 1.0))
        for t in range(4):
            attack.craft(self._context(rng, np.array([True, True]), t))
        assert attack._pulls.sum() > 0
        attack.reset()
        assert attack._pulls.sum() == 0
        assert attack._rewards.sum() == 0.0
        assert attack._last_arm is None
        assert attack.scale == pytest.approx(0.5)

    def test_registry_resolves_inner(self):
        attack = make_attack(
            "probe-bandit",
            {"inner": "little-is-enough", "arms": (1.0, 2.0)},
        )
        assert isinstance(attack, BanditProbingAttack)
        assert attack.arms == (1.0, 2.0)
        assert "little-is-enough" in attack.name

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            BanditProbingAttack(arms=())
        with pytest.raises(ConfigurationError):
            BanditProbingAttack(arms=(1.0, -2.0))
        with pytest.raises(ConfigurationError):
            BanditProbingAttack(arms=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            BanditProbingAttack(exploration=-0.5)
        with pytest.raises(ConfigurationError):
            BanditProbingAttack(inner="sign-flip")  # type: ignore[arg-type]
