"""Lint-rule interface: one AST pass over one module per rule.

Rules are deliberately *module-local*: a rule sees one parsed file at a
time (path, source, AST) and yields findings.  Cross-module state would
make rule results depend on traversal order, which would break both the
per-file suppression semantics and the fixture-driven rule tests that
lint single snippets in isolation.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import PurePath

from repro.lint.findings import Finding

__all__ = ["ModuleContext", "LintRule"]


@dataclass(frozen=True)
class ModuleContext:
    """One parsed module as the rules see it."""

    path: str
    source: str
    tree: ast.Module
    #: ``path`` normalized to forward slashes, for suffix-based module
    #: scoping (rules that only apply to specific library files).
    posix_path: str = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "posix_path", PurePath(self.path).as_posix()
        )

    def is_module(self, *suffixes: str) -> bool:
        """Whether this file is one of the named library modules.

        Matching is by path suffix (``repro/utils/rng.py`` matches both
        ``src/repro/utils/rng.py`` and an installed site-packages copy),
        which also lets the rule tests fake a library path for fixture
        snippets.
        """
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)


class LintRule(ABC):
    """One enforced invariant.

    Subclasses set ``name`` (the registry/CLI identifier, also the key
    of ``# repro-lint: ignore[name]`` suppressions) and ``description``
    (one line, shown by ``--list-rules``), and implement :meth:`check`.
    """

    name: str = "rule"
    description: str = ""

    @abstractmethod
    def check(self, module: ModuleContext) -> Iterable[Finding]:
        """Yield every violation of this rule in ``module``."""

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            rule=self.name,
            path=module.path,
            line=int(getattr(node, "lineno", 1)),
            column=int(getattr(node, "col_offset", 0)) + 1,
            message=message,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
