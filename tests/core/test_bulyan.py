"""Tests for the Bulyan extension."""

import numpy as np
import pytest

from repro.attacks.modern import LittleIsEnoughAttack
from repro.core.bulyan import (
    Bulyan,
    batched_bulyan,
    batched_bulyan_aggregate,
    batched_bulyan_committees,
)
from repro.core.krum import Krum
from repro.core.registry import make_aggregator
from repro.exceptions import ByzantineToleranceError, DimensionMismatchError
from tests.attacks.test_base import make_context


class TestBulyanBasics:
    def test_requires_4f_plus_3(self):
        with pytest.raises(ByzantineToleranceError, match="4f"):
            Bulyan(f=2).aggregate(np.zeros((10, 3)))

    def test_minimum_n_accepted(self, rng):
        vectors = rng.standard_normal((11, 4))  # 4*2+3
        out = Bulyan(f=2).aggregate(vectors)
        assert out.shape == (4,)

    def test_f_zero_is_committee_of_all(self, rng):
        vectors = rng.standard_normal((5, 3))
        result = Bulyan(f=0).aggregate_detailed(vectors)
        assert result.selected.size == 5
        np.testing.assert_allclose(result.vector, vectors.mean(axis=0))

    def test_unanimity(self):
        vectors = np.tile(np.array([1.0, -2.0, 3.0]), (11, 1))
        np.testing.assert_allclose(
            Bulyan(f=2).aggregate(vectors), [1.0, -2.0, 3.0]
        )

    def test_committee_admits_at_most_f_byzantine(self, rng):
        # Identical far Byzantine vectors can sneak into the committee's
        # tail (their mutual distance is 0 once the pool shrinks); the
        # guarantee is that at most f of them can, and the trimmed
        # aggregation phase neutralizes those.
        honest = 0.1 * rng.standard_normal((9, 4))
        byzantine = 1e6 * np.ones((2, 4))
        stack = np.vstack([honest, byzantine])
        result = Bulyan(f=2).aggregate_detailed(stack)
        byzantine_in_committee = int(np.sum(result.selected >= 9))
        assert byzantine_in_committee <= 2
        # The output itself must ignore them entirely.
        assert np.all(np.abs(result.vector) < 1.0)

    def test_output_within_honest_envelope(self, rng):
        honest = rng.standard_normal((9, 5))
        byzantine = 1e5 * np.ones((2, 5))
        stack = np.vstack([honest, byzantine])
        out = Bulyan(f=2).aggregate(stack)
        assert np.all(out >= honest.min(axis=0) - 1e-9)
        assert np.all(out <= honest.max(axis=0) + 1e-9)

    def test_registered(self):
        rule = make_aggregator("bulyan", f=1)
        assert isinstance(rule, Bulyan)


class TestBatchedBulyanAPI:
    """The shared batched pipeline the rule and the engine kernel run."""

    def test_matches_rule_per_slice(self, rng):
        batch = rng.standard_normal((5, 11, 4))
        vectors, committees = batched_bulyan(batch, 2)
        rule = Bulyan(f=2)
        for b in range(5):
            want = rule.aggregate_detailed(batch[b])
            assert vectors[b].tobytes() == want.vector.tobytes()
            np.testing.assert_array_equal(committees[b], want.selected)

    def test_committees_then_aggregate_compose(self, rng):
        batch = rng.standard_normal((3, 11, 4))
        committees = batched_bulyan_committees(batch, 2)
        vectors = batched_bulyan_aggregate(batch, committees, 2)
        whole_vectors, whole_committees = batched_bulyan(batch, 2)
        np.testing.assert_array_equal(committees, whole_committees)
        np.testing.assert_array_equal(vectors, whole_vectors)

    def test_f_zero_committee_is_everyone(self, rng):
        batch = rng.standard_normal((2, 5, 3))
        vectors, committees = batched_bulyan(batch, 0)
        np.testing.assert_array_equal(committees, np.tile(np.arange(5), (2, 1)))
        np.testing.assert_allclose(vectors, batch.mean(axis=1))

    def test_near_boundary_fallback_is_reached(self, rng):
        # f = 1, n = 7: the last committee pick happens with 3 candidates
        # left, where Krum scoring (m - f - 2 >= 1) is impossible — the
        # median-distance fallback must fill the committee without error.
        batch = rng.standard_normal((4, 7, 3))
        vectors, committees = batched_bulyan(batch, 1)
        assert committees.shape == (4, 5)
        for b in range(4):
            assert len(set(committees[b].tolist())) == 5
            want = Bulyan(f=1).aggregate_detailed(batch[b])
            assert vectors[b].tobytes() == want.vector.tobytes()

    def test_validates_shapes_and_tolerance(self, rng):
        with pytest.raises(DimensionMismatchError):
            batched_bulyan(rng.standard_normal((5, 3)), 0)
        with pytest.raises(ByzantineToleranceError, match="4f"):
            batched_bulyan(rng.standard_normal((2, 10, 3)), 2)
        with pytest.raises(DimensionMismatchError, match="committees"):
            batched_bulyan_aggregate(
                rng.standard_normal((2, 7, 3)), np.zeros((3, 5), dtype=np.int64), 1
            )


class TestBulyanVsStealthAttack:
    def test_blunts_single_coordinate_planting(self, rng):
        """The ICML'18 motivation: a proposal inside the honest cloud on
        all-but-one coordinate, with one planted coordinate at the cloud
        edge, can win Krum's *whole-vector* selection, shifting that
        coordinate; Bulyan's per-coordinate trim caps the shift."""
        f, n = 3, 15
        num_honest = n - f
        krum_err, bulyan_err = [], []
        for trial in range(30):
            trial_rng = np.random.default_rng(trial)
            honest = trial_rng.standard_normal((num_honest, 20))
            # Byzantine: copy the honest mean exactly (unbeatable Krum
            # score) but plant +3 std on coordinate 0.
            crafted = np.tile(honest.mean(axis=0), (f, 1))
            crafted[:, 0] += 3.0 * honest[:, 0].std()
            stack = np.vstack([honest, crafted])
            truth = np.zeros(20)
            krum_err.append(
                abs(Krum(f=f).aggregate(stack)[0] - truth[0])
            )
            bulyan_err.append(
                abs(Bulyan(f=f).aggregate(stack)[0] - truth[0])
            )
        assert np.mean(bulyan_err) < np.mean(krum_err), (
            f"bulyan {np.mean(bulyan_err):.3f} should beat krum "
            f"{np.mean(krum_err):.3f} on the planted coordinate"
        )

    def test_little_is_enough_comparison(self, rng):
        """Aggregate error under little-is-enough: Bulyan's trimmed
        aggregation bounds the per-coordinate displacement."""
        f, n, d = 3, 15, 10
        attack = LittleIsEnoughAttack(z=1.0)
        errors = {"krum": [], "bulyan": []}
        for trial in range(30):
            trial_rng = np.random.default_rng(100 + trial)
            ctx = make_context(
                trial_rng,
                num_honest=n - f,
                num_byzantine=f,
                dimension=d,
            )
            stack = np.vstack([ctx.honest_gradients, attack.craft(ctx)])
            truth = np.ones(d)  # make_context centers honest at 1.0
            errors["krum"].append(
                float(np.linalg.norm(Krum(f=f).aggregate(stack) - truth))
            )
            errors["bulyan"].append(
                float(np.linalg.norm(Bulyan(f=f).aggregate(stack) - truth))
            )
        assert np.mean(errors["bulyan"]) < np.mean(errors["krum"])
