"""Server-tier bench — Byzantine parameter servers vs replicated median.

Sweeps the parameter-server tier axes ``num_servers ∈ {1, 3}`` ×
``byzantine_servers ∈ {0, 1}`` under the sign-flip broadcast attack on
the quadratic reference workload, for three gradient-aggregation rules
(krum, coordinate-median, average) — the worker-side defense is the
ByzSGD-style coordinate-wise median over the replica broadcasts, built
into :class:`~repro.servers.ReplicatedServerGroup`.

Three claims are asserted alongside the measurement:

* **headline** — a single Byzantine server defeats the single-server
  run for *every* gradient rule (no worker-side aggregator can save a
  training loop whose broadcast parameters are corrupted), while three
  replicas with one Byzantine member recover to within
  ``RECOVER_MAX`` × the attack-free baseline: the coordinate median of
  ``{x, x, −x}`` is exactly ``x``, so the recovery is in fact
  bit-identical to the attack-free trajectory;
* **degenerate identity** — the grid restricted to ``num_servers=1,
  byzantine_servers=0, num_shards=1`` reproduces the axis-free grid's
  trajectories (and labels) bit-for-bit;
* **differential identity** — the batched executor reproduces the loop
  executor's server-tier trajectories bit-for-bit, and sharded
  averaging (``num_shards=4``) is bitwise identical to unsharded
  averaging (the rule is coordinate-separable, so the shard cut is an
  implementation detail).

Writes the measurement to ``BENCH_server_tier.json`` at the repo root.

Standalone usage (CI smoke / regenerating the JSON)::

    PYTHONPATH=src python benchmarks/bench_server_tier.py          # full grid
    PYTHONPATH=src python benchmarks/bench_server_tier.py --smoke  # tiny grid
    PYTHONPATH=src python benchmarks/bench_server_tier.py --smoke \\
        --output BENCH_server_tier.smoke.json   # CI artifact
"""

from __future__ import annotations

import json
import platform
import sys
from collections import defaultdict
from pathlib import Path

import numpy as np

from repro.engine import ScenarioGrid, run_grid
from repro.experiments.reporting import format_table

try:
    from benchmarks.conftest import emit, run_once
except ImportError:  # executed as a script: python benchmarks/bench_server_tier.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit, run_once

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_server_tier.json"

AGGREGATORS = (
    ("krum", {}),
    ("coordinate-median", {}),
    ("average", {}),
)
SERVER_ATTACK = ("sign-flip-broadcast", {})

# Headline thresholds: one Byzantine server among one must leave every
# rule at >= DEGRADE_MIN x its attack-free baseline (the sign-flipped
# broadcast turns gradient descent into geometric divergence), while
# three replicas with one Byzantine member must recover to within
# RECOVER_MAX x.  Measured: ~1e4x degraded vs exactly 1.0x recovered
# (median{x, x, -x} = x bitwise) at the full grid.
DEGRADE_MIN = 4.0
RECOVER_MAX = 2.0


def _grid(
    *,
    seeds=(0, 1, 2),
    num_rounds=100,
    dimension=20,
    server_axes: bool = True,
    num_shards: int = 1,
    aggregators=AGGREGATORS,
) -> ScenarioGrid:
    extra = {}
    if server_axes:
        extra.update(
            num_servers_values=(1, 3),
            byzantine_servers_values=(0, 1),
            server_attacks=(SERVER_ATTACK,),
        )
    return ScenarioGrid(
        seeds=seeds,
        aggregators=aggregators,
        f_values=(0,),
        num_workers=15,
        dimension=dimension,
        sigma=0.5,
        num_rounds=num_rounds,
        learning_rate=0.1,
        lr_timescale=None,
        num_shards=num_shards,
        **extra,
    )


def _identical_trajectories(result_a, result_b, *, by_position=False) -> bool:
    labels_a = [spec.label for spec in result_a.specs]
    labels_b = (
        [spec.label for spec in result_b.specs] if by_position else labels_a
    )
    for label_a, label_b in zip(labels_a, labels_b):
        if (
            result_a.final_params[label_a].tobytes()
            != result_b.final_params[label_b].tobytes()
        ):
            return False
        history_a = result_a.histories[label_a]
        history_b = result_b.histories[label_b]
        if len(history_a) != len(history_b) or any(
            a != b for a, b in zip(history_a, history_b)
        ):
            return False
    return True


def _tier_rows(result) -> list[dict]:
    """Mean final distance-to-optimum per (aggregator, num_servers,
    byzantine_servers) cell group, averaged over seeds."""
    groups: dict[tuple, list] = defaultdict(list)
    for spec in result.specs:
        history = result.histories[spec.label]
        final = history.evaluated[-1]
        key = (spec.aggregator, spec.num_servers, spec.byzantine_servers)
        groups[key].append(final.extras.get("dist_to_opt"))
    rows = []
    for (aggregator, num_servers, byzantine_servers), dists in sorted(
        groups.items()
    ):
        rows.append(
            {
                "aggregator": aggregator,
                "num_servers": num_servers,
                "byzantine_servers": byzantine_servers,
                "server_attack": (
                    SERVER_ATTACK[0] if byzantine_servers > 0 else None
                ),
                "dist_to_opt_mean": float(np.mean(dists)),
                "seeds": len(dists),
            }
        )
    return rows


def _headline(rows: list[dict]) -> list[dict]:
    """Per-aggregator baseline / degraded / recovered ratios."""
    by_cell = {
        (row["aggregator"], row["num_servers"], row["byzantine_servers"]):
        row["dist_to_opt_mean"]
        for row in rows
    }
    headline = []
    for name, _kwargs in AGGREGATORS:
        baseline = by_cell[(name, 1, 0)]
        degraded = by_cell[(name, 1, 1)]
        recovered = by_cell[(name, 3, 1)]
        floor = max(baseline, 1e-12)
        headline.append(
            {
                "aggregator": name,
                "baseline_dist": baseline,
                "degraded_dist": degraded,
                "recovered_dist": recovered,
                "degraded_ratio": degraded / floor,
                "recovered_ratio": recovered / floor,
            }
        )
    return headline


def run_tier(grid: ScenarioGrid, degenerate_grids) -> dict:
    """Execute the tier grid in both modes, check the degenerate cell
    against the axis-free grid and sharded vs unsharded averaging, and
    summarize."""
    loop_result = run_grid(grid, mode="loop", eval_every=25)
    batched_result = run_grid(grid, mode="batched", eval_every=25)
    speedup = loop_result.wall_time / max(batched_result.wall_time, 1e-12)

    # Degenerate cell: the tier grid with its axes pinned at (1, 0, 1)
    # must reproduce the axis-free grid bit for bit — same labels, same
    # trajectories (the differential suite pins this too; the bench
    # re-checks it on the bench configuration).
    pinned_grid, axis_free_grid = degenerate_grids
    pinned = run_grid(pinned_grid, mode="batched", eval_every=25)
    axis_free = run_grid(axis_free_grid, mode="batched", eval_every=25)
    degenerate_identical = [
        spec.label for spec in pinned.specs
    ] == [spec.label for spec in axis_free.specs] and _identical_trajectories(
        pinned, axis_free
    )

    # Sharding a coordinate-separable rule must not change anything:
    # sharded(average) over 4 shards == average, bitwise.
    unsharded = run_grid(
        _grid(
            seeds=tuple(grid.seeds),
            num_rounds=grid.num_rounds,
            dimension=grid.dimension,
            server_axes=False,
            aggregators=(("average", {}),),
        ),
        mode="loop",
        eval_every=25,
    )
    sharded = run_grid(
        _grid(
            seeds=tuple(grid.seeds),
            num_rounds=grid.num_rounds,
            dimension=grid.dimension,
            server_axes=False,
            num_shards=4,
            aggregators=(("average", {}),),
        ),
        mode="loop",
        eval_every=25,
    )
    sharding_identical = _identical_trajectories(
        unsharded, sharded, by_position=True
    )

    rows = _tier_rows(batched_result)
    return {
        "grid": {
            "cells": len(grid),
            "num_workers": grid.num_workers,
            "dimension": grid.dimension,
            "num_rounds": grid.num_rounds,
            "seeds": list(grid.seeds),
            "aggregators": [name for name, _ in AGGREGATORS],
            "num_servers_values": list(grid.num_servers_values),
            "byzantine_servers_values": list(grid.byzantine_servers_values),
            "server_attack": SERVER_ATTACK[0],
        },
        "backend": batched_result.backend,
        "loop_seconds": round(loop_result.wall_time, 4),
        "batched_seconds": round(batched_result.wall_time, 4),
        "speedup": round(speedup, 2),
        "trajectories_identical": _identical_trajectories(
            loop_result, batched_result
        ),
        "degenerate_equals_axis_free": degenerate_identical,
        "sharded_average_equals_average": sharding_identical,
        "tier": rows,
        "headline": _headline(rows),
        "degrade_min": DEGRADE_MIN,
        "recover_max": RECOVER_MAX,
        "python": platform.python_version(),
    }


def _emit_summary(summary: dict) -> None:
    emit(
        format_table(
            [
                "cells", "n", "d", "rounds", "loop s", "batched s",
                "identical", "degenerate==plain", "sharded==plain",
            ],
            [
                [
                    summary["grid"]["cells"],
                    summary["grid"]["num_workers"],
                    summary["grid"]["dimension"],
                    summary["grid"]["num_rounds"],
                    summary["loop_seconds"],
                    summary["batched_seconds"],
                    summary["trajectories_identical"],
                    summary["degenerate_equals_axis_free"],
                    summary["sharded_average_equals_average"],
                ]
            ],
            title="Server tier — replicated Byzantine parameter servers",
        )
    )
    emit(
        format_table(
            ["aggregator", "baseline", "1 server, 1 byz", "3 servers, 1 byz"],
            [
                [
                    row["aggregator"],
                    f"{row['baseline_dist']:.4g}",
                    f"{row['degraded_ratio']:.3g}x",
                    f"{row['recovered_ratio']:.3g}x",
                ]
                for row in summary["headline"]
            ],
            title="Broadcast sign-flip: degrade vs replicated-median recovery",
        )
    )


def _check(summary: dict) -> list[str]:
    failures = []
    if not summary["trajectories_identical"]:
        failures.append(
            "batched engine diverged from the per-scenario loop on the "
            "server-tier grid"
        )
    if not summary["degenerate_equals_axis_free"]:
        failures.append(
            "the degenerate tier cell (1 server, 0 byzantine, 1 shard) "
            "forked from the axis-free grid"
        )
    if not summary["sharded_average_equals_average"]:
        failures.append(
            "sharded(average) over 4 shards diverged from unsharded "
            "averaging on a coordinate-separable rule"
        )
    for row in summary["headline"]:
        if row["degraded_ratio"] < DEGRADE_MIN:
            failures.append(
                f"one Byzantine server should degrade {row['aggregator']} "
                f"to >= {DEGRADE_MIN}x its attack-free baseline, got "
                f"{row['degraded_ratio']:.3g}x"
            )
        if row["recovered_ratio"] > RECOVER_MAX:
            failures.append(
                f"worker-side median over 3 replicas should recover "
                f"{row['aggregator']} to <= {RECOVER_MAX}x baseline, got "
                f"{row['recovered_ratio']:.3g}x"
            )
    return failures


def _degenerate_grids(grid: ScenarioGrid):
    pinned = ScenarioGrid(
        seeds=tuple(grid.seeds),
        aggregators=AGGREGATORS,
        f_values=(0,),
        num_workers=grid.num_workers,
        dimension=grid.dimension,
        sigma=0.5,
        num_rounds=grid.num_rounds,
        learning_rate=0.1,
        lr_timescale=None,
        num_servers_values=(1,),
        byzantine_servers_values=(0,),
        num_shards_values=(1,),
    )
    axis_free = _grid(
        seeds=tuple(grid.seeds),
        num_rounds=grid.num_rounds,
        dimension=grid.dimension,
        server_axes=False,
    )
    return pinned, axis_free


def bench_server_tier(benchmark):
    grid = _grid()
    summary = run_once(
        benchmark, lambda: run_tier(grid, _degenerate_grids(grid))
    )
    _emit_summary(summary)
    RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
    for failure in _check(summary):
        raise AssertionError(failure)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a small grid (1 seed, 10 rounds) without writing "
        "BENCH_server_tier.json — the CI sanity check",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the summary JSON to this path (used by CI to "
        "upload the smoke measurement as a workflow artifact)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        grid = _grid(seeds=(0,), num_rounds=10)
    else:
        grid = _grid()
    summary = run_tier(grid, _degenerate_grids(grid))
    _emit_summary(summary)
    print(json.dumps(summary, indent=1))
    if args.output is not None:
        args.output.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {args.output}")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if not args.smoke:
        RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
