"""Tests for ASCII reporting."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.reporting import format_series, format_table


class TestFormatTable:
    def test_basic_table(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", None]])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "-" in lines[1]
        assert "1" in lines[2]
        assert "-" in lines[3]  # None renders as '-'

    def test_title(self):
        out = format_table(["c"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000012345], [123456.0], [1.5]])
        assert "1.234e-05" in out
        assert "1.235e+05" in out
        assert "1.5000" in out

    def test_bool_formatting(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_rejects_no_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_subsampling(self):
        rounds = np.arange(100)
        out = format_series(
            "fig", rounds, {"krum": rounds * 0.5}, max_points=5
        )
        data_lines = out.splitlines()[3:]
        assert len(data_lines) <= 5

    def test_multiple_labels(self):
        rounds = np.arange(4)
        out = format_series(
            "fig", rounds, {"a": np.ones(4), "b": np.zeros(4)}
        )
        assert "a" in out.splitlines()[1]
        assert "b" in out.splitlines()[1]

    def test_rejects_misaligned_series(self):
        with pytest.raises(ConfigurationError):
            format_series("fig", np.arange(3), {"a": np.ones(4)})

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            format_series("fig", np.array([]), {})
