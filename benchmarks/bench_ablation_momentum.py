"""Ablation — worker-side momentum under Krum.

Momentum averages ~1/(1−β) past mini-batches, shrinking the effective
estimator deviation σ the server sees.  Per Proposition 4.2 the
resilience angle improves with σ, so momentum should *tighten* Krum's
convergence basin — at the price of transient bias (the EMA lags the
true gradient while it turns).  This bench measures both effects.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.omniscient import OmniscientAttack
from repro.core.krum import Krum
from repro.distributed.schedules import InverseTimeSchedule
from repro.distributed.simulator import TrainingSimulation
from repro.experiments.reporting import format_table
from repro.gradients.momentum import MomentumEstimator
from repro.models.quadratic import QuadraticBowl

N, F, DIMENSION = 15, 3, 10
SIGMA = 0.3  # deliberately noisy so the momentum effect is visible
ROUNDS = 400


def _run(beta: float | None, seed: int = 5):
    bowl = QuadraticBowl(DIMENSION)
    estimators = []
    for _ in range(N - F):
        base = bowl.as_estimator(SIGMA)
        estimators.append(
            base if beta is None else MomentumEstimator(base, beta=beta)
        )
    sim = TrainingSimulation(
        aggregator=Krum(f=F),
        schedule=InverseTimeSchedule(0.3, timescale=150.0),
        honest_estimators=estimators,
        initial_params=np.full(DIMENSION, 10.0),
        num_byzantine=F,
        attack=OmniscientAttack(scale=5.0),
        true_gradient_fn=bowl.exact_gradient,
        evaluate=lambda params: {
            "loss": bowl.value(params),
            "grad_norm": float(np.linalg.norm(bowl.exact_gradient(params))),
        },
        seed=seed,
    )
    return sim.run(ROUNDS, eval_every=40)


def bench_ablation_momentum_tightens_basin(benchmark):
    def run():
        results = {}
        for label, beta in {
            "no momentum": None,
            "momentum β=0.5": 0.5,
            "momentum β=0.9": 0.9,
        }.items():
            history = _run(beta)
            _rounds, grad_norms = history.series("grad_norm")
            results[label] = (
                float(np.mean(grad_norms[-3:])),
                history.final_loss,
                history.byzantine_selection_rate(),
            )
        return results

    results = run_once(benchmark, run)
    emit(
        format_table(
            ["worker estimator", "final ‖∇Q‖ (avg of last 3 evals)",
             "final Q(x)", "byz-sel%"],
            [
                [label, grad_norm, loss, 100 * sel]
                for label, (grad_norm, loss, sel) in results.items()
            ],
            title=(
                f"Ablation — worker momentum under Krum + omniscient attack "
                f"(n={N}, f={F}, σ={SIGMA})"
            ),
        )
    )
    plain = results["no momentum"][0]
    heavy = results["momentum β=0.9"][0]
    assert heavy < plain, (
        f"momentum should tighten the gradient plateau: β=0.9 gave "
        f"{heavy:.4f} vs plain {plain:.4f}"
    )
    for _label, (_g, _l, selection_rate) in results.items():
        assert selection_rate < 0.05
