"""Registry-wide server-attack contract sweep.

Every name in ``available_server_attacks()`` must honour the corruption
contract — the server-side mirror of ``tests/attacks/test_contract.py``:
a ``(byzantine_servers, d)`` float64 output, no mutation of the
context's arrays, determinism under a fixed RNG (with ``reset()``
restoring stateful attacks to a fresh run), and an honest ``stateful``
flag.  The sweep is registry-driven, so a newly registered server attack
is contract-tested by construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.servers.attacks import ServerAttackContext
from repro.servers.registry import available_server_attacks, make_server_attack

DIMENSION = 5
NUM_SERVERS = 4
NUM_BYZANTINE = 2


def build_attack(name: str):
    return make_server_attack(name)


def make_context(
    *,
    num_byzantine: int = NUM_BYZANTINE,
    seed: int = 0,
    round_index: int = 0,
    rng: np.random.Generator | None = None,
) -> ServerAttackContext:
    params_rng = np.random.default_rng(seed + 7919 * round_index)
    context = ServerAttackContext(
        round_index=round_index,
        params=1.0 + params_rng.standard_normal(DIMENSION),
        num_servers=NUM_SERVERS,
        byzantine_indices=np.arange(
            NUM_SERVERS - num_byzantine, NUM_SERVERS, dtype=np.int64
        ),
        rng=rng if rng is not None else np.random.default_rng(seed),
    )
    context.validate()
    return context


def corrupt_rounds(attack, *, rounds: int = 4, seed: int = 0):
    """Corrupt over several evolving rounds (exercises stateful paths),
    sharing one RNG stream across the rounds as the server group does."""
    rng = np.random.default_rng(seed)
    return [
        attack.corrupt(make_context(seed=seed, round_index=t, rng=rng))
        for t in range(rounds)
    ]


@pytest.mark.parametrize("name", available_server_attacks())
class TestServerAttackContract:
    def test_output_shape_and_dtype(self, name):
        attack = build_attack(name)
        for out in corrupt_rounds(attack):
            assert out.shape == (NUM_BYZANTINE, DIMENSION)
            assert out.dtype == np.float64

    def test_does_not_mutate_context(self, name):
        attack = build_attack(name)
        context = make_context()
        params_before = context.params.copy()
        indices_before = context.byzantine_indices.copy()
        attack.corrupt(context)
        assert context.params.tobytes() == params_before.tobytes()
        assert context.byzantine_indices.tobytes() == indices_before.tobytes()

    def test_deterministic_under_fixed_rng(self, name):
        first = corrupt_rounds(build_attack(name), seed=11)
        second = corrupt_rounds(build_attack(name), seed=11)
        for a, b in zip(first, second):
            assert a.tobytes() == b.tobytes()

    def test_reset_restores_fresh_run(self, name):
        attack = build_attack(name)
        corrupt_rounds(attack, seed=3)
        attack.reset()
        reused = corrupt_rounds(attack, seed=3)
        fresh = corrupt_rounds(build_attack(name), seed=3)
        for a, b in zip(reused, fresh):
            assert a.tobytes() == b.tobytes()

    def test_stateful_flag_is_honest(self, name):
        """Attacks declaring themselves stateless must corrupt
        identically without a reset; hidden state behind
        ``stateful = False`` would break the batched engine's sharing
        guard."""
        attack = build_attack(name)
        if attack.stateful:
            pytest.skip("stateful attacks are covered by the reset test")
        first = corrupt_rounds(attack, seed=5)
        second = corrupt_rounds(attack, seed=5)
        for a, b in zip(first, second):
            assert a.tobytes() == b.tobytes()

    def test_single_byzantine_replica(self, name):
        attack = build_attack(name)
        context = make_context(num_byzantine=1)
        out = attack.corrupt(context)
        assert out.shape == (1, DIMENSION)

    def test_name_is_a_nonempty_string(self, name):
        attack = build_attack(name)
        assert isinstance(attack.name, str) and attack.name
