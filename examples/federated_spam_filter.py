"""A federated spam filter surviving mixed real-world failures.

The paper's introduction motivates Byzantine tolerance with *realistic*
failure causes: stalled processes, biased data, and actual adversaries.
This scenario trains a logistic-regression spam filter across 16
organizations where 5 slots misbehave in different ways at once:

  * 2 crashed collectors that send zero vectors,
  * 1 straggler replaying stale gradients,
  * 2 hostile silos sending *boosted* negated gradients (the "model
    replacement" escalation from the federated-learning literature:
    the attacker scales its update to outweigh the honest mass).

The whole comparison — federated averaging vs Krum vs Multi-Krum — is
one ``ScenarioGrid`` on the ``logistic-spambase`` workload, with the
mixed failure mode expressed declaratively as a ``composite`` attack
spec, and runs as one batched round loop via ``run_grid``.

Run:  python examples/federated_spam_filter.py
"""

from __future__ import annotations

from repro.engine import ScenarioGrid, run_grid
from repro.experiments import format_table

NUM_WORKERS = 16
NUM_BYZANTINE = 5
ROUNDS = 400

# 2 crashes + 1 straggler + 2 boosted sign-flips, assigned to the
# Byzantine slots in order (the hostile silos take the two highest ids).
FAILURE_MIX = (
    ("crash", {}, 2),
    ("straggler", {"delay": 10}, 1),
    ("sign-flip", {"scale": 8.0}, 2),
)


def main() -> None:
    grid = ScenarioGrid(
        seeds=(3,),
        workload="logistic-spambase",
        workload_kwargs={
            "num_train": 3000,
            "num_eval": 800,
            "batch_size": 32,
            "data_seed": 0,
        },
        attacks=(("composite", {"parts": FAILURE_MIX}),),
        aggregators=(
            ("average", {}),
            ("krum", {}),
            ("multi-krum", {"m": 6}),
        ),
        f_values=(NUM_BYZANTINE,),
        num_workers=NUM_WORKERS,
        num_rounds=ROUNDS,
        learning_rate=0.05,
        lr_timescale=None,
    )
    print(f"training {len(grid)} spam-filter arms in one batched loop ...")
    result = run_grid(grid, mode="batched", eval_every=50)

    rows = []
    for spec in result.specs:
        label = {
            "average": "federated averaging",
            "krum": "krum",
            "multi-krum": "multi-krum m=6",
        }[spec.aggregator]
        history = result.histories[spec.label]
        # The hostile silos hold the two highest worker ids (composite
        # parts are assigned to Byzantine slots in order).
        hostile_slots = {NUM_WORKERS - 2, NUM_WORKERS - 1}
        selecting = [r for r in history.records if r.selected]
        hostile_rate = (
            sum(1 for r in selecting if set(r.selected) & hostile_slots)
            / len(selecting)
            if selecting
            else 0.0
        )
        rows.append(
            [
                label,
                f"{100 * history.final_accuracy:.1f}%",
                history.final_loss,
                f"{100 * hostile_rate:.1f}%",
            ]
        )

    print()
    print(
        format_table(
            ["rule", "test accuracy", "test loss", "hostile silo selected"],
            rows,
            title=(
                f"spam filter across {NUM_WORKERS} orgs — "
                "2 crashed + 1 straggler + 2 boosted hostile silos"
            ),
        )
    )
    print(
        "\nThe crash/straggler slots merely slow averaging down, but the"
        "\nboosted hostile silos drag the linear aggregate away from the"
        "\ndecision boundary — averaging collapses.  Krum scores the"
        "\nboosted gradients as far outliers and never selects them."
    )


if __name__ == "__main__":
    main()
