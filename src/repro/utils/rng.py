"""Reproducible random-number-generator management.

The paper's model assumes correct workers draw i.i.d. samples; in the
simulator this is realized by giving every worker an *independent* RNG
stream spawned from a single root seed.  ``numpy``'s ``SeedSequence``
spawning guarantees streams are statistically independent while the whole
experiment stays reproducible from one integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]

SeedLike = int | np.random.SeedSequence | np.random.Generator | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts an integer seed, a ``SeedSequence``, an existing ``Generator``
    (returned unchanged) or ``None`` (fresh OS-entropy generator).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from one seed.

    The streams are independent in the ``SeedSequence.spawn`` sense: no
    two of them share state, and the full list is reproducible from the
    root seed.  When ``seed`` is already a ``Generator`` the children are
    spawned from it (numpy >= 1.25 ``Generator.spawn``).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(count))
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
