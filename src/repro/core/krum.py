"""The Krum and Multi-Krum choice functions (Section 4 of the paper).

For each proposal ``V_i`` the *score* is the sum of squared distances to
its ``n − f − 2`` closest other proposals:

    s(i) = Σ_{i → j} ‖V_i − V_j‖²

where ``i → j`` means ``V_j`` is among the ``n − f − 2`` nearest
neighbours of ``V_i``.  Krum returns the proposal with the minimal score
(ties broken by the smallest worker identifier, footnote 3); Multi-Krum
averages the ``m`` best-scored proposals, interpolating between Krum
(m = 1) and averaging over the trusted subset.

The implementation computes the full pairwise squared-distance matrix
with one matrix product and per-row partial sorts, giving the
``O(n² · d)`` time of Lemma 4.1.  A naive quadruple-checked reference
implementation is provided for cross-validation in tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import SelectionAggregator
from repro.core.theory import check_krum_precondition
from repro.exceptions import ByzantineToleranceError, ConfigurationError
from repro.utils.linalg import pairwise_sq_distances
from repro.utils.validation import check_positive_int

__all__ = ["krum_scores", "krum_scores_reference", "Krum", "MultiKrum"]


def krum_scores(vectors: np.ndarray, f: int) -> np.ndarray:
    """Krum score s(i) for every proposal in an ``(n, d)`` stack.

    Requires ``n − f − 2 >= 1`` so each proposal has at least one
    neighbour to be scored against.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    num_neighbors = n - f - 2
    if num_neighbors < 1:
        raise ByzantineToleranceError(
            f"Krum needs n - f - 2 >= 1 neighbours, got n={n}, f={f}", n=n, f=f
        )
    distances = pairwise_sq_distances(vectors, nonfinite_as_inf=True)
    # Exclude self-distances from the neighbour pool by making them +inf,
    # then sum the num_neighbors smallest entries per row.
    np.fill_diagonal(distances, np.inf)
    # argpartition puts the num_neighbors smallest entries first, O(n) per row.
    neighbor_part = np.partition(distances, num_neighbors - 1, axis=1)
    return neighbor_part[:, :num_neighbors].sum(axis=1)


def krum_scores_reference(vectors: np.ndarray, f: int) -> np.ndarray:
    """Naive O(n² log n) reference implementation of :func:`krum_scores`.

    Used by the test suite to cross-check the vectorized version; do not
    use in experiments.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    num_neighbors = n - f - 2
    if num_neighbors < 1:
        raise ByzantineToleranceError(
            f"Krum needs n - f - 2 >= 1 neighbours, got n={n}, f={f}", n=n, f=f
        )
    scores = np.empty(n)
    for i in range(n):
        dists = sorted(
            float(np.sum((vectors[i] - vectors[j]) ** 2))
            for j in range(n)
            if j != i
        )
        scores[i] = sum(dists[:num_neighbors])
    return scores


class Krum(SelectionAggregator):
    """Krum: select the proposal closest to its n − f − 2 neighbours.

    Parameters
    ----------
    f:
        Number of Byzantine workers to tolerate.
    strict:
        When true (default), :meth:`check_tolerance` enforces the paper's
        resilience precondition ``2f + 2 < n`` (Proposition 4.2).  When
        false, only the structural requirement ``n − f − 2 >= 1`` is
        enforced — useful for deliberately running Krum outside its
        guarantee in the resilience-violation experiments.
    """

    def __init__(self, f: int, *, strict: bool = True):
        self.f = check_positive_int(f, "f", minimum=0)
        self.strict = bool(strict)
        self.name = f"krum(f={self.f})"

    def check_tolerance(self, num_workers: int) -> None:
        if self.strict:
            check_krum_precondition(num_workers, self.f)
        elif num_workers - self.f - 2 < 1:
            raise ByzantineToleranceError(
                f"Krum needs n - f - 2 >= 1, got n={num_workers}, f={self.f}",
                n=num_workers,
                f=self.f,
            )

    def select(self, vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        scores = krum_scores(vectors, self.f)
        # np.argmin returns the first minimal index — exactly the paper's
        # smallest-identifier tie-break (footnote 3).
        winner = int(np.argmin(scores))
        return np.array([winner], dtype=np.int64), scores


class MultiKrum(SelectionAggregator):
    """Multi-Krum: average the m proposals with the best Krum scores.

    ``m = 1`` reduces to Krum; larger ``m`` recovers some of averaging's
    variance reduction (the "cost of resilience" trade-off studied in the
    full paper).  ``m`` must not exceed ``n − f − 2`` for the selected set
    to stay within the theoretically trusted pool; pass ``strict=False``
    to relax that to ``m <= n``.
    """

    def __init__(self, f: int, m: int, *, strict: bool = True):
        self.f = check_positive_int(f, "f", minimum=0)
        self.m = check_positive_int(m, "m", minimum=1)
        self.strict = bool(strict)
        self.name = f"multi-krum(f={self.f},m={self.m})"

    def check_tolerance(self, num_workers: int) -> None:
        if self.strict:
            check_krum_precondition(num_workers, self.f)
            limit = num_workers - self.f - 2
            if self.m > limit:
                raise ByzantineToleranceError(
                    f"Multi-Krum needs m <= n - f - 2 = {limit}, got m={self.m}",
                    n=num_workers,
                    f=self.f,
                )
        else:
            if num_workers - self.f - 2 < 1:
                raise ByzantineToleranceError(
                    f"Krum scoring needs n - f - 2 >= 1, got n={num_workers}, "
                    f"f={self.f}",
                    n=num_workers,
                    f=self.f,
                )
            if self.m > num_workers:
                raise ConfigurationError(
                    f"m={self.m} exceeds the number of workers {num_workers}"
                )

    def select(self, vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        scores = krum_scores(vectors, self.f)
        # Stable sort keeps the smallest-identifier tie-break among equal
        # scores, matching Krum's deterministic selection.  The base
        # class then averages the m selected proposals.
        order = np.argsort(scores, kind="stable")
        return order[: self.m].astype(np.int64), scores
